"""CLI tests (exercised in-process against the tiny bundles)."""

import numpy as np
import pytest

import repro.cli as cli


@pytest.fixture(autouse=True)
def tiny_benchmarks(monkeypatch, tiny_bundle, tiny_dataset):
    """Route every CLI benchmark name to the shared tiny fixtures so CLI
    tests never trigger full-scale pre-training."""
    monkeypatch.setattr(cli, "_load",
                        lambda name, seed: (tiny_bundle, tiny_dataset))


class TestCLI:
    def test_stats(self, capsys):
        assert cli.main(["stats", "cub"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "candidate_pairs" in out

    def test_match_hard(self, capsys):
        assert cli.main(["match", "cub", "--method", "hard",
                         "--epochs", "0"]) == 0
        out = capsys.readouterr().out
        assert "H@1=" in out

    def test_match_plus_and_save(self, capsys, tmp_path):
        path = str(tmp_path / "tuned.npz")
        assert cli.main(["match", "cub", "--method", "plus",
                         "--epochs", "1", "--save", path]) == 0
        out = capsys.readouterr().out
        assert "saved tuned matcher" in out

    def test_clean(self, capsys):
        assert cli.main(["clean", "cub", "--inject", "2",
                         "--z-threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["stats", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])
