"""CLI tests (exercised in-process against the tiny bundles)."""

import io
import json

import numpy as np
import pytest

import repro.cli as cli
from repro.obs import read_jsonl


@pytest.fixture(autouse=True)
def tiny_benchmarks(monkeypatch, tiny_bundle, tiny_dataset):
    """Route every CLI benchmark name to the shared tiny fixtures so CLI
    tests never trigger full-scale pre-training."""
    monkeypatch.setattr(cli, "_load",
                        lambda name, seed: (tiny_bundle, tiny_dataset))


class TestCLI:
    def test_stats(self, capsys):
        assert cli.main(["stats", "cub"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "candidate_pairs" in out

    def test_match_hard(self, capsys):
        # the hard prompt has no trainable parameters, so even with
        # --epochs 1 this is a zero-training run
        assert cli.main(["match", "cub", "--method", "hard",
                         "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "H@1=" in out

    def test_match_plus_and_save(self, capsys, tmp_path):
        path = str(tmp_path / "tuned.npz")
        assert cli.main(["match", "cub", "--method", "plus",
                         "--epochs", "1", "--save", path]) == 0
        out = capsys.readouterr().out
        assert "saved tuned matcher" in out

    def test_clean(self, capsys):
        assert cli.main(["clean", "cub", "--inject", "2",
                         "--z-threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_benchmark_flag_alias(self, capsys):
        assert cli.main(["match", "--benchmark", "cub", "--method", "hard",
                         "--epochs", "1"]) == 0
        assert "H@1=" in capsys.readouterr().out

    def test_match_requires_some_benchmark(self):
        with pytest.raises(SystemExit):
            cli.main(["match", "--method", "hard"])

    def test_metrics_out_zero_epoch_run(self, capsys, tmp_path):
        """--metrics-out captures efficiency + eval rows even when no
        epoch ever runs (the hard prompt has nothing to tune)."""
        path = tmp_path / "m.jsonl"
        assert cli.main(["match", "cub", "--method", "hard", "--epochs", "1",
                         "--metrics-out", str(path),
                         "--log-level", "off"]) == 0
        assert "wrote" in capsys.readouterr().out
        rows = read_jsonl(path)
        by_name = {row.get("name"): row for row in rows}
        assert rows[0]["type"] == "meta"
        assert rows[0]["benchmark"] == "cub" and rows[0]["method"] == "hard"
        assert by_name["efficiency.seconds_per_epoch"]["value"] == 0.0
        assert by_name["efficiency.peak_memory_mb"]["value"] >= 0.0
        assert by_name["eval.hits1"]["type"] == "gauge"
        assert any(row["type"] == "span" and row["name"] == "fit"
                   for row in rows)

    def test_metrics_out_training_run(self, tmp_path):
        """A tuned run exports per-epoch loss/throughput metrics and the
        hierarchical span profile (the acceptance-criteria schema)."""
        path = tmp_path / "m.jsonl"
        assert cli.main(["match", "cub", "--method", "plus", "--epochs", "2",
                         "--metrics-out", str(path),
                         "--log-level", "off"]) == 0
        rows = read_jsonl(path)
        by_name = {row.get("name"): row for row in rows}
        loss = by_name["train.epoch_loss"]
        assert loss["type"] == "histogram" and loss["count"] == 2
        assert {"sum", "min", "max", "p50", "p95"} <= set(loss)
        assert by_name["train.pairs_per_sec"]["type"] == "gauge"
        assert by_name["train.batches"]["value"] > 0
        assert by_name["efficiency.seconds_per_epoch"]["value"] > 0.0
        assert by_name["plan.partitions"]["value"] >= 1
        assert by_name["pcp.partition_images"]["type"] == "histogram"
        assert by_name["ns.negatives_per_partition"]["count"] >= 1
        span_names = {row["name"] for row in rows if row["type"] == "span"}
        assert {"fit", "fit/epoch", "fit/epoch/labels",
                "fit/plan"} <= span_names
        epoch_span = by_name["fit/epoch"]
        assert epoch_span["count"] == 2
        assert epoch_span["p50_seconds"] <= epoch_span["p95_seconds"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["stats", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestCLIValidation:
    """Bad numeric flags die at parse time with an argparse error, not a
    stack trace from inside training."""

    @pytest.mark.parametrize("argv", [
        ["match", "cub", "--test-fraction", "0"],
        ["match", "cub", "--test-fraction", "1"],
        ["match", "cub", "--test-fraction", "1.5"],
        ["match", "cub", "--test-fraction", "-0.1"],
        ["match", "cub", "--test-fraction", "half"],
        ["match", "cub", "--epochs", "0"],
        ["match", "cub", "--epochs", "-3"],
        ["match", "cub", "--epochs", "two"],
        ["match", "cub", "--checkpoint-every", "0"],
        ["serve", "cub", "--epochs", "0"],
        ["serve", "cub", "--capacity", "0"],
        ["serve", "cub", "--workers", "0"],
        ["serve", "cub", "--top-k", "0"],
        ["serve", "cub", "--default-budget-ms", "0"],
        ["serve", "cub", "--full-floor-ms", "-1"],
        ["serve", "cub", "--breaker-threshold", "0"],
        ["serve", "cub", "--breaker-threshold", "1.5"],
        ["serve", "cub", "--breaker-min-calls", "0"],
        ["serve", "cub", "--breaker-cooldown-ms", "0"],
        ["serve", "cub", "--trace-sample-rate", "1.5"],
        ["serve", "cub", "--trace-sample-rate", "-0.1"],
        ["load", "run", "cub", "--rate", "0"],
        ["load", "run", "cub", "--rate", "-5"],
        ["load", "run", "cub", "--rate", "fast"],
        ["load", "run", "cub", "--duration", "0"],
        ["load", "run", "cub", "--duration", "-1"],
        ["load", "run", "cub", "--bad-fraction", "1.5"],
        ["load", "run", "cub", "--skew", "-1"],
        ["load", "run", "cub", "--budget-ms", "0"],
        ["load", "run", "cub", "--trace-sample-rate", "2"],
        ["load", "sweep", "cub", "--rates", ""],
        ["load", "sweep", "cub", "--rates", "0,5"],
        ["load", "sweep", "cub", "--rates", "5,5"],
        ["load", "sweep", "cub", "--rates", "10,5"],
        ["load", "sweep", "cub", "--rates", "1,x"],
        ["load", "replay", "t.jsonl", "cub", "--speedup", "0"],
    ])
    def test_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_boundary_values_accepted(self, capsys):
        assert cli.main(["match", "cub", "--method", "hard", "--epochs", "1",
                         "--test-fraction", "0.99",
                         "--checkpoint-every", "1"]) == 0
        assert "H@1=" in capsys.readouterr().out


class TestCLIServe:
    def test_serve_round_trip_over_stdio(self, capsys, monkeypatch,
                                         tiny_dataset, tmp_path):
        vertex = int(list(tiny_dataset.entity_vertices)[0])
        requests = [
            json.dumps({"id": "q1", "vertex": vertex, "top_k": 2}),
            "not json at all",
            json.dumps({"id": "q2", "vertex": -1}),
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(r + "\n" for r in requests)))
        metrics = tmp_path / "serve.jsonl"
        assert cli.main(["serve", "cub", "--method", "hard", "--epochs", "1",
                         "--log-level", "off",
                         "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line)
                     for line in captured.out.splitlines() if line]
        assert len(responses) == 3
        by_id = {r["id"]: r for r in responses}
        assert by_id["q1"]["ok"] is True
        assert by_id["q1"]["tier"] == "full"
        assert len(by_id["q1"]["matches"]) == 2
        assert by_id[None]["error"]["type"] == "bad_request"
        assert by_id["q2"]["error"]["type"] == "bad_request"
        # diagnostics stay on stderr, stdout is pure response JSONL
        assert "serving" in captured.err and "served 3 responses" in captured.err
        # every response — ok, parse failure, bad request — is traceable
        assert all(r["trace_id"] for r in responses)
        assert len({r["trace_id"] for r in responses}) == 3
        all_rows = read_jsonl(metrics)
        rows = {row.get("name"): row for row in all_rows}
        assert rows["serve.requests_total"]["value"] == 3
        assert rows["serve.ok_total"]["value"] == 1
        traces = {row["trace_id"]: row for row in all_rows
                  if row["type"] == "trace"}
        assert set(traces) == {r["trace_id"] for r in responses}
        assert traces[by_id["q2"]["trace_id"]]["flags"] == ["error"]
        # a scrape-ready OpenMetrics snapshot lands next to the JSONL
        prom = metrics.with_suffix(".prom").read_text()
        assert "repro_serve_requests_total 3" in prom
        assert prom.endswith("# EOF\n")

    def test_serve_sample_rate_zero_keeps_only_errors(
            self, capsys, monkeypatch, tiny_dataset, tmp_path):
        vertex = int(list(tiny_dataset.entity_vertices)[0])
        requests = [json.dumps({"id": "ok", "vertex": vertex}),
                    json.dumps({"id": "bad", "vertex": -1})]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(r + "\n" for r in requests)))
        metrics = tmp_path / "serve.jsonl"
        assert cli.main(["serve", "cub", "--method", "hard", "--epochs", "1",
                         "--log-level", "off", "--trace-sample-rate", "0",
                         "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        traces = [row for row in read_jsonl(metrics)
                  if row["type"] == "trace"]
        assert len(traces) == 1
        assert traces[0]["sampled"] == "forced"


class TestCLIObs:
    @staticmethod
    def jsonl(path, rows):
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        return path

    def test_obs_report_renders_traces(self, capsys, tmp_path):
        export = self.jsonl(tmp_path / "run.jsonl", [
            {"type": "meta", "schema_version": 2},
            {"type": "span", "name": "fit", "count": 1,
             "total_seconds": 0.5, "p50_seconds": 0.5, "p95_seconds": 0.5},
            {"type": "trace", "trace_id": "aaa", "name": "serve.request",
             "flags": ["degraded"], "sampled": "forced",
             "duration_ms": 12.0,
             "spans": {"name": "serve.request", "start_ms": 0.0,
                       "duration_ms": 12.0,
                       "events": [{"kind": "degrade", "at_ms": 1.0}],
                       "children": []}}])
        assert cli.main(["obs", "report", str(export), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "== span profile ==" in out
        assert "trace aaa" in out and "flags=degraded" in out
        assert "* degrade" in out

    def test_obs_diff_gates_on_seeded_regression(self, capsys, tmp_path):
        old = self.jsonl(tmp_path / "old.jsonl", [
            {"type": "gauge", "name": "encode.latency_ms", "value": 10.0}])
        new = self.jsonl(tmp_path / "new.jsonl", [
            {"type": "gauge", "name": "encode.latency_ms", "value": 20.0}])
        assert cli.main(["obs", "diff", str(old), str(new),
                         "--threshold-pct", "25"]) == 1
        captured = capsys.readouterr()
        assert "encode.latency_ms" in captured.out
        assert "regressed" in captured.err
        # same exports under a lenient threshold: clean exit
        assert cli.main(["obs", "diff", str(old), str(new),
                         "--threshold-pct", "150"]) == 0

    def test_obs_diff_min_delta_noise_floor(self, tmp_path, capsys):
        old = self.jsonl(tmp_path / "old.jsonl", [
            {"type": "gauge", "name": "fit.p95", "value": 0.001}])
        new = self.jsonl(tmp_path / "new.jsonl", [
            {"type": "gauge", "name": "fit.p95", "value": 0.002}])
        assert cli.main(["obs", "diff", str(old), str(new),
                         "--min-delta", "0.01"]) == 0
        capsys.readouterr()

    def test_obs_diff_accepts_bench_baseline(self, capsys, tmp_path):
        old = tmp_path / "baseline.json"
        old.write_text(json.dumps(
            {"mode": "quick", "paths": {"score": {"optimized_s": 1.0}}}))
        new = tmp_path / "current.json"
        new.write_text(json.dumps(
            {"mode": "quick", "paths": {"score": {"optimized_s": 3.0}}}))
        assert cli.main(["obs", "diff", str(old), str(new)]) == 1
        assert "bench.score.optimized_s" in capsys.readouterr().out

    def test_obs_prom_renders_to_stdout_and_file(self, capsys, tmp_path):
        export = self.jsonl(tmp_path / "run.jsonl", [
            {"type": "counter", "name": "cache.hit", "value": 2}])
        assert cli.main(["obs", "prom", str(export)]) == 0
        assert "repro_cache_hit_total 2" in capsys.readouterr().out
        out = tmp_path / "run.prom"
        assert cli.main(["obs", "prom", str(export),
                         "-o", str(out)]) == 0
        assert out.read_text().endswith("# EOF\n")

    def test_serve_rejects_invalid_sample_rate(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "cub", "--trace-sample-rate", "2"])
        assert excinfo.value.code == 2
        assert "--trace-sample-rate" in capsys.readouterr().err


class TestCLILoad:
    def test_load_run_writes_report_and_metrics(self, capsys, tmp_path):
        report_path = tmp_path / "run.json"
        metrics = tmp_path / "run.jsonl"
        assert cli.main(["load", "run", "cub", "--method", "hard",
                         "--epochs", "1", "--process", "uniform",
                         "--rate", "100", "--duration", "0.2",
                         "--log-level", "off",
                         "--output", str(report_path),
                         "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        assert "latency (from intended arrival)" in captured.out
        doc = json.loads(report_path.read_text())
        assert doc["schema"] == "repro.loadreport/1"
        assert doc["summary"]["offered"] == 20
        assert doc["summary"]["outcomes"]["lost"] == 0
        rows = {row.get("name"): row for row in read_jsonl(metrics)}
        assert rows["load.offered_total"]["value"] == 20
        assert "buckets" in rows["load.latency_ms"]
        prom = metrics.with_suffix(".prom").read_text()
        assert "# TYPE repro_load_latency_ms histogram" in prom
        assert 'le="+Inf"' in prom

    def test_load_sweep_frontier_slo_diff_round_trip(self, capsys,
                                                     tmp_path):
        """The CI gate end to end: sweep → frontier artifact → obs slo
        verdict → obs diff against itself stays clean."""
        frontier = tmp_path / "frontier.json"
        assert cli.main(["load", "sweep", "cub", "--method", "hard",
                         "--epochs", "1", "--process", "uniform",
                         "--duration", "0.2", "--rates", "20,50",
                         "--log-level", "off",
                         "--p99-ms", "10000", "--availability", "0.3",
                         "--output", str(frontier)]) == 0
        captured = capsys.readouterr()
        assert "knee:" in captured.out
        doc = json.loads(frontier.read_text())
        assert doc["schema"] == "repro.frontier/1"
        assert doc["knee"]["rate"] == 50.0
        assert len(doc["points"]) == 2

        assert cli.main(["obs", "slo", str(frontier),
                         "--p99-ms", "10000", "--availability", "0.3"]) == 0
        assert "PASS" in capsys.readouterr().out
        assert cli.main(["obs", "slo", str(frontier),
                         "--p99-ms", "0.0001"]) == 1
        assert "VIOLATED" in capsys.readouterr().out

        assert cli.main(["obs", "diff", str(frontier), str(frontier),
                         "--watch", "frontier.knee.interarrival_ms"]) == 0
        capsys.readouterr()

    def test_load_sweep_requires_an_objective(self, capsys, tmp_path):
        assert cli.main(["load", "sweep", "cub", "--rates", "5,10"]) == 2
        assert "needs an SLO" in capsys.readouterr().err

    def test_load_replay_from_trace_export(self, capsys, tmp_path):
        metrics = tmp_path / "recorded.jsonl"
        assert cli.main(["load", "run", "cub", "--method", "hard",
                         "--epochs", "1", "--process", "uniform",
                         "--rate", "50", "--duration", "0.2",
                         "--trace-sample-rate", "1", "--log-level", "off",
                         "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        replay_report = tmp_path / "replay.json"
        assert cli.main(["load", "replay", str(metrics), "cub",
                         "--method", "hard", "--epochs", "1",
                         "--speedup", "4", "--log-level", "off",
                         "--output", str(replay_report)]) == 0
        captured = capsys.readouterr()
        assert "replaying 10 requests" in captured.err
        doc = json.loads(replay_report.read_text())
        assert doc["summary"]["offered"] == 10
        assert doc["meta"]["speedup"] == 4.0

    def test_load_replay_empty_export_fails(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text(json.dumps({"type": "meta",
                                     "schema_version": 3}) + "\n")
        assert cli.main(["load", "replay", str(empty), "cub"]) == 2
        assert "no replayable traces" in capsys.readouterr().err

    def test_obs_slo_on_load_report(self, capsys, tmp_path):
        report_path = tmp_path / "run.json"
        assert cli.main(["load", "run", "cub", "--method", "hard",
                         "--epochs", "1", "--process", "uniform",
                         "--rate", "100", "--duration", "0.1",
                         "--log-level", "off",
                         "--output", str(report_path)]) == 0
        capsys.readouterr()
        assert cli.main(["obs", "slo", str(report_path),
                         "--availability", "0.5",
                         "--p99-ms", "10000"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "burn rate" in out

    def test_obs_slo_requires_an_objective(self, capsys, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"summary": {}}))
        assert cli.main(["obs", "slo", str(path)]) == 2
        assert "needs an SLO" in capsys.readouterr().err


class TestCLICheckpointing:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--checkpoint-dir", str(ckpt_dir)]) == 0
        assert list(ckpt_dir.glob("ckpt-*.ckpt"))
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "2",
                         "--checkpoint-dir", str(ckpt_dir), "--resume"]) == 0
        assert "H@1=" in capsys.readouterr().out

    def test_resume_without_checkpoint_dir_rejected(self, capsys):
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_empty_dir_trains_fresh(self, capsys, tmp_path):
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--checkpoint-dir", str(tmp_path / "empty"),
                         "--resume"]) == 0
        assert "H@1=" in capsys.readouterr().out
