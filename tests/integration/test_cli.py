"""CLI tests (exercised in-process against the tiny bundles)."""

import io
import json

import numpy as np
import pytest

import repro.cli as cli
from repro.obs import read_jsonl


@pytest.fixture(autouse=True)
def tiny_benchmarks(monkeypatch, tiny_bundle, tiny_dataset):
    """Route every CLI benchmark name to the shared tiny fixtures so CLI
    tests never trigger full-scale pre-training."""
    monkeypatch.setattr(cli, "_load",
                        lambda name, seed: (tiny_bundle, tiny_dataset))


class TestCLI:
    def test_stats(self, capsys):
        assert cli.main(["stats", "cub"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "candidate_pairs" in out

    def test_match_hard(self, capsys):
        # the hard prompt has no trainable parameters, so even with
        # --epochs 1 this is a zero-training run
        assert cli.main(["match", "cub", "--method", "hard",
                         "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "H@1=" in out

    def test_match_plus_and_save(self, capsys, tmp_path):
        path = str(tmp_path / "tuned.npz")
        assert cli.main(["match", "cub", "--method", "plus",
                         "--epochs", "1", "--save", path]) == 0
        out = capsys.readouterr().out
        assert "saved tuned matcher" in out

    def test_clean(self, capsys):
        assert cli.main(["clean", "cub", "--inject", "2",
                         "--z-threshold", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_benchmark_flag_alias(self, capsys):
        assert cli.main(["match", "--benchmark", "cub", "--method", "hard",
                         "--epochs", "1"]) == 0
        assert "H@1=" in capsys.readouterr().out

    def test_match_requires_some_benchmark(self):
        with pytest.raises(SystemExit):
            cli.main(["match", "--method", "hard"])

    def test_metrics_out_zero_epoch_run(self, capsys, tmp_path):
        """--metrics-out captures efficiency + eval rows even when no
        epoch ever runs (the hard prompt has nothing to tune)."""
        path = tmp_path / "m.jsonl"
        assert cli.main(["match", "cub", "--method", "hard", "--epochs", "1",
                         "--metrics-out", str(path),
                         "--log-level", "off"]) == 0
        assert "wrote" in capsys.readouterr().out
        rows = read_jsonl(path)
        by_name = {row.get("name"): row for row in rows}
        assert rows[0]["type"] == "meta"
        assert rows[0]["benchmark"] == "cub" and rows[0]["method"] == "hard"
        assert by_name["efficiency.seconds_per_epoch"]["value"] == 0.0
        assert by_name["efficiency.peak_memory_mb"]["value"] >= 0.0
        assert by_name["eval.hits1"]["type"] == "gauge"
        assert any(row["type"] == "span" and row["name"] == "fit"
                   for row in rows)

    def test_metrics_out_training_run(self, tmp_path):
        """A tuned run exports per-epoch loss/throughput metrics and the
        hierarchical span profile (the acceptance-criteria schema)."""
        path = tmp_path / "m.jsonl"
        assert cli.main(["match", "cub", "--method", "plus", "--epochs", "2",
                         "--metrics-out", str(path),
                         "--log-level", "off"]) == 0
        rows = read_jsonl(path)
        by_name = {row.get("name"): row for row in rows}
        loss = by_name["train.epoch_loss"]
        assert loss["type"] == "histogram" and loss["count"] == 2
        assert {"sum", "min", "max", "p50", "p95"} <= set(loss)
        assert by_name["train.pairs_per_sec"]["type"] == "gauge"
        assert by_name["train.batches"]["value"] > 0
        assert by_name["efficiency.seconds_per_epoch"]["value"] > 0.0
        assert by_name["plan.partitions"]["value"] >= 1
        assert by_name["pcp.partition_images"]["type"] == "histogram"
        assert by_name["ns.negatives_per_partition"]["count"] >= 1
        span_names = {row["name"] for row in rows if row["type"] == "span"}
        assert {"fit", "fit/epoch", "fit/epoch/labels",
                "fit/plan"} <= span_names
        epoch_span = by_name["fit/epoch"]
        assert epoch_span["count"] == 2
        assert epoch_span["p50_seconds"] <= epoch_span["p95_seconds"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["stats", "imagenet"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestCLIValidation:
    """Bad numeric flags die at parse time with an argparse error, not a
    stack trace from inside training."""

    @pytest.mark.parametrize("argv", [
        ["match", "cub", "--test-fraction", "0"],
        ["match", "cub", "--test-fraction", "1"],
        ["match", "cub", "--test-fraction", "1.5"],
        ["match", "cub", "--test-fraction", "-0.1"],
        ["match", "cub", "--test-fraction", "half"],
        ["match", "cub", "--epochs", "0"],
        ["match", "cub", "--epochs", "-3"],
        ["match", "cub", "--epochs", "two"],
        ["match", "cub", "--checkpoint-every", "0"],
        ["serve", "cub", "--epochs", "0"],
        ["serve", "cub", "--capacity", "0"],
        ["serve", "cub", "--workers", "0"],
        ["serve", "cub", "--top-k", "0"],
        ["serve", "cub", "--default-budget-ms", "0"],
        ["serve", "cub", "--full-floor-ms", "-1"],
        ["serve", "cub", "--breaker-threshold", "0"],
        ["serve", "cub", "--breaker-threshold", "1.5"],
        ["serve", "cub", "--breaker-min-calls", "0"],
        ["serve", "cub", "--breaker-cooldown-ms", "0"],
    ])
    def test_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_boundary_values_accepted(self, capsys):
        assert cli.main(["match", "cub", "--method", "hard", "--epochs", "1",
                         "--test-fraction", "0.99",
                         "--checkpoint-every", "1"]) == 0
        assert "H@1=" in capsys.readouterr().out


class TestCLIServe:
    def test_serve_round_trip_over_stdio(self, capsys, monkeypatch,
                                         tiny_dataset, tmp_path):
        vertex = int(list(tiny_dataset.entity_vertices)[0])
        requests = [
            json.dumps({"id": "q1", "vertex": vertex, "top_k": 2}),
            "not json at all",
            json.dumps({"id": "q2", "vertex": -1}),
        ]
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(r + "\n" for r in requests)))
        metrics = tmp_path / "serve.jsonl"
        assert cli.main(["serve", "cub", "--method", "hard", "--epochs", "1",
                         "--log-level", "off",
                         "--metrics-out", str(metrics)]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line)
                     for line in captured.out.splitlines() if line]
        assert len(responses) == 3
        by_id = {r["id"]: r for r in responses}
        assert by_id["q1"]["ok"] is True
        assert by_id["q1"]["tier"] == "full"
        assert len(by_id["q1"]["matches"]) == 2
        assert by_id[None]["error"]["type"] == "bad_request"
        assert by_id["q2"]["error"]["type"] == "bad_request"
        # diagnostics stay on stderr, stdout is pure response JSONL
        assert "serving" in captured.err and "served 3 responses" in captured.err
        rows = {row.get("name"): row for row in read_jsonl(metrics)}
        assert rows["serve.requests_total"]["value"] == 3
        assert rows["serve.ok_total"]["value"] == 1


class TestCLICheckpointing:
    def test_checkpoint_then_resume(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--checkpoint-dir", str(ckpt_dir)]) == 0
        assert list(ckpt_dir.glob("ckpt-*.ckpt"))
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "2",
                         "--checkpoint-dir", str(ckpt_dir), "--resume"]) == 0
        assert "H@1=" in capsys.readouterr().out

    def test_resume_without_checkpoint_dir_rejected(self, capsys):
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_with_empty_dir_trains_fresh(self, capsys, tmp_path):
        assert cli.main(["match", "cub", "--method", "soft", "--epochs", "1",
                         "--checkpoint-dir", str(tmp_path / "empty"),
                         "--resume"]) == 0
        assert "H@1=" in capsys.readouterr().out
