"""Public API surface tests: everything the README promises exists."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_lazy_names_cached(self):
        first = repro.CrossEM
        assert repro.CrossEM is first


SUBPACKAGE_EXPORTS = {
    "repro.nn": ["Tensor", "Module", "Linear", "TransformerEncoder",
                 "AdamW", "MemoryTracker", "no_grad"],
    "repro.text": ["Vocabulary", "WordTokenizer", "MiniLM"],
    "repro.vision": ["render_repository", "PatchFeatureExtractor",
                     "VisionEncoder", "record_video", "frames_to_images"],
    "repro.clip": ["MiniCLIP", "pretrain_clip", "get_pretrained_bundle",
                   "PropertyAligner"],
    "repro.datalake": ["Graph", "RelationalTable", "JsonDocument",
                       "DataLake", "text_to_graph", "GNNAggregator"],
    "repro.datasets": ["ConceptUniverse", "load_cub", "load_sun",
                       "load_fbimg", "train_test_split"],
    "repro.core": ["CrossEM", "CrossEMPlus", "HardPromptGenerator",
                   "SoftPromptModule", "generate_minibatches",
                   "sample_negatives", "orthogonal_constraint",
                   "evaluate_ranking", "matching_set_metrics",
                   "save_matcher", "load_matcher", "clean_repository"],
    "repro.baselines": ["CLIPZeroShot", "ALIGNZeroShot", "VisualBERTMatcher",
                        "ViLBERTMatcher", "IMRAMMatcher", "TransAEMatcher",
                        "GPPTMatcher", "DistMultKG", "RotatEKG", "RSMEKG",
                        "MKGformerLite"],
}


@pytest.mark.parametrize("module_name", sorted(SUBPACKAGE_EXPORTS))
def test_subpackage_exports(module_name):
    module = importlib.import_module(module_name)
    for name in SUBPACKAGE_EXPORTS[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", sorted(SUBPACKAGE_EXPORTS))
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_every_public_callable_has_docstring():
    """Documentation deliverable: public items carry doc comments."""
    for module_name, names in SUBPACKAGE_EXPORTS.items():
        module = importlib.import_module(module_name)
        for name in names:
            obj = getattr(module, name)
            assert getattr(obj, "__doc__", None), f"{module_name}.{name}"
