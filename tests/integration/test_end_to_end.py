"""Integration tests: the full pipeline end to end.

These exercise the realistic flow a user follows: heterogeneous sources
→ data mapping → unified graph → prompt-tuned matching → evaluation,
plus cross-method ordering checks on the shared tiny benchmark.
"""

import numpy as np
import pytest

from repro.baselines.dual import CLIPZeroShot
from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.datalake.json_doc import JsonDocument, JsonObject
from repro.datalake.mapping import DataLake
from repro.datalake.table import RelationalTable, TableSchema
from repro.datasets.splits import train_test_split
from repro.datasets.world import SYMBOLIC_FAMILIES
from repro.vision.image import render_repository


class TestDataLakeToMatching:
    def test_table_source_end_to_end(self, tiny_bundle):
        """Build the benchmark through the DataLake API by hand and
        match it — the Example 1 scenario (tuple t1 vs image I1)."""
        universe = tiny_bundle.universe
        schema = universe.schema
        concepts = list(universe)[:6]
        columns = (("name",)
                   + tuple(f"{p} color" for p in schema.part_names)
                   + tuple(SYMBOLIC_FAMILIES))
        table = RelationalTable(TableSchema("animals", columns, key="name"))
        for concept in concepts:
            values = {"name": concept.name}
            for part, color in concept.visual_items():
                values[f"{schema.part_names[part]} color"] = \
                    schema.color_names[color]
            values.update(concept.symbolic)
            table.insert_dict(values)
        lake = DataLake()
        lake.add_table(table)
        graph = lake.unified_graph()
        images = render_repository(concepts, images_per_concept=2, seed=3)

        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(graph, images)
        pairs = matcher.match_pairs(top_k=1)
        assert len(pairs) == 6
        # at least some top-1 matches are correct at this scale
        name_of = {v: graph.label(v) for v in graph.entity_ids()}
        image_concept = {img.image_id: img.concept_index for img in images}
        correct = sum(
            1 for vertex, image_id in pairs
            if concepts[image_concept[image_id]].name == name_of[vertex])
        assert correct >= 2

    def test_json_source_end_to_end(self, tiny_bundle):
        universe = tiny_bundle.universe
        concepts = list(universe)[:5]
        objects = [JsonObject(c.name, {"habitat": c.symbolic["habitat"]})
                   for c in concepts]
        lake = DataLake()
        lake.add_json(JsonDocument(objects))
        graph = lake.unified_graph()
        images = render_repository(concepts, images_per_concept=2, seed=4)
        matcher = CrossEM(tiny_bundle,
                          CrossEMConfig(prompt="baseline", epochs=0))
        matcher.fit(graph, images)
        assert matcher.score().shape == (5, 10)


class TestMethodOrdering:
    def test_structure_prompts_not_worse_than_chance_margin(
            self, tiny_bundle, tiny_dataset):
        zero = CLIPZeroShot(tiny_bundle).fit(tiny_dataset)
        base = zero.evaluate(tiny_dataset)
        hard = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        hard.fit(tiny_dataset.graph, tiny_dataset.images,
                 tiny_dataset.entity_vertices)
        structured = hard.evaluate(tiny_dataset)
        # structure must not collapse relative to the naive prompt
        assert structured.mrr > base.mrr * 0.5

    def test_crossem_plus_runs_full_protocol(self, tiny_bundle, tiny_dataset):
        split = train_test_split(tiny_dataset, 0.5, seed=1)
        matcher = CrossEMPlus(tiny_bundle,
                              CrossEMPlusConfig(epochs=2, lr=1e-3, seed=1))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        result = matcher.evaluate(tiny_dataset, list(split.test))
        assert 0.0 <= result.hits1 <= 100.0
        assert matcher.efficiency.seconds_per_epoch > 0


class TestReproducibility:
    def test_same_seed_same_everything(self, tiny_bundle, tiny_dataset):
        scores = []
        for _ in range(2):
            matcher = CrossEMPlus(
                tiny_bundle, CrossEMPlusConfig(epochs=1, lr=1e-3, seed=5))
            matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                        tiny_dataset.entity_vertices)
            scores.append(matcher.score())
        np.testing.assert_allclose(scores[0], scores[1], atol=1e-5)

    def test_different_seed_different_batches(self, tiny_bundle,
                                              tiny_dataset):
        losses = []
        for seed in (1, 2):
            matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft",
                                                         epochs=1, lr=1e-3,
                                                         seed=seed))
            matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                        tiny_dataset.entity_vertices)
            losses.append(matcher.epoch_losses)
        assert losses[0] != losses[1]
