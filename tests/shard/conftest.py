"""Shard fixtures: a masked worker trio behind a real router.

The cluster fixture runs one :class:`NetServer` per shard slot — each
over a :class:`MatchService` masked to its partition of the image
space — plus an unmasked control server, all on ephemeral ports in
background threads.  The router fixture runs a real
:class:`ShardRouter` over a mutable static endpoint table, so tests
kill and revive shards by flipping one entry.  Teardown drains the
router first, then every worker, through the same paths production
uses.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.netserve import NetServeConfig, NetServer
from repro.obs import (registry, reset_spans, set_tracing_enabled,
                       trace_recorder)
from repro.serve import MatchService, ServeConfig
from repro.shard import RouterConfig, ShardRouter


@pytest.fixture(autouse=True)
def clean_metrics():
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)
    yield
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)


@pytest.fixture(scope="session")
def fitted_hard(tiny_bundle, tiny_dataset):
    """Hard prompts, no tuning — every shard fits this identically."""
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                tiny_dataset.entity_vertices)
    return matcher


class StaticEndpoints:
    """The trivial endpoint provider: a mutable address table.

    Tests kill a shard by setting its entry to ``None`` and revive it
    by putting the address back — exactly the signal a supervisor
    restart sends the router.
    """

    def __init__(self, addresses: List[Optional[Tuple[str, int]]]) -> None:
        self.addresses = list(addresses)
        self.count = len(self.addresses)

    def address_of(self, slot: int) -> Optional[Tuple[str, int]]:
        return self.addresses[slot]

    def live_count(self) -> int:
        return sum(1 for a in self.addresses if a is not None)


@pytest.fixture()
def run_worker(fitted_hard):
    """Start NetServers over (optionally masked) services; teardown
    drains each one and asserts the drain was clean."""
    services: List[MatchService] = []
    started = []

    def start(slot: Optional[int] = None, count: Optional[int] = None,
              **server_overrides) -> Tuple[NetServer, Tuple[str, int]]:
        service = MatchService(
            fitted_hard,
            config=ServeConfig(capacity=32, workers=1,
                               shard_slot=slot,
                               shard_count=count)).warmup()
        services.append(service)
        settings = dict(host="127.0.0.1", port=0, batch_window_ms=2.0,
                        max_batch=8, drain_timeout_s=10.0)
        settings.update(server_overrides)
        server = NetServer(service, NetServeConfig(**settings))
        ready = threading.Event()
        bound = {}
        exit_code = {}

        def on_ready(address):
            bound["address"] = address
            ready.set()

        def main():
            exit_code["value"] = server.run(install_signals=False,
                                            ready=on_ready)
            ready.set()

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        assert ready.wait(timeout=60), "worker never became ready"
        assert "address" in bound, "worker exited before binding"
        started.append((server, thread, exit_code))
        return server, bound["address"]

    yield start
    for server, thread, exit_code in started:
        server.trigger_drain()
        thread.join(timeout=30)
        assert not thread.is_alive(), "worker failed to drain"
    for service in services:
        service.shutdown(timeout=5.0)


@pytest.fixture()
def shard_cluster(run_worker):
    """Three masked shard workers plus an unmasked single-process
    control; returns ``(endpoints, single_address)``."""
    addresses = []
    for slot in range(3):
        _, address = run_worker(slot=slot, count=3)
        addresses.append(address)
    _, single_address = run_worker()
    return StaticEndpoints(addresses), single_address


@pytest.fixture()
def run_router():
    """Start a ShardRouter on an ephemeral port; teardown drains it
    and asserts the exit code was 0 (the clean-drain contract)."""
    started = []

    def start(endpoints, **config_overrides) -> Tuple[ShardRouter,
                                                      Tuple[str, int]]:
        settings = dict(host="127.0.0.1", port=0, shard_timeout_ms=10000.0,
                        drain_timeout_s=10.0)
        settings.update(config_overrides)
        router = ShardRouter(endpoints, RouterConfig(**settings))
        ready = threading.Event()
        bound = {}
        exit_code = {}

        def on_ready(address):
            bound["address"] = address
            ready.set()

        def main():
            exit_code["value"] = router.run(install_signals=False,
                                            ready=on_ready)
            ready.set()

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        assert ready.wait(timeout=60), "router never became ready"
        assert "address" in bound, "router exited before binding"
        started.append((router, thread, exit_code))
        return router, bound["address"]

    yield start
    for router, thread, exit_code in started:
        router.trigger_drain()
        thread.join(timeout=30)
        assert not thread.is_alive(), "router failed to drain"
        assert exit_code.get("value") == 0, "router drain was not clean"
