"""Scatter/gather routing, end to end over real sockets.

The marquee claim: with every shard healthy, a routed response is
*bit-identical* to the single-process server's answer for the same
request — compared over the wire, byte for byte, modulo ``elapsed_ms``
alone.  The identity tests pin ``trace_id`` by sending an explicit
trace context (DESIGN.md §15): both the router and the single-process
server must *join* the caller's id rather than mint their own, so the
id is part of the compared payload, not masked out of it (the PR 9
masking debt).  Then the faults: a dead shard costs
coverage (typed partial), not availability; an open breaker skips the
doomed shard and heals after cooldown back to bit-identity; a stalled
pooled connection is hedged on a fresh one; oversized and garbled
lines are answered, not fatal.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time

import pytest

from repro.loadgen import LoadConfig, SocketDriver, build_schedule, \
    fetch_info, run_schedule
from repro.netserve.protocol import MAX_LINE_BYTES
from repro.obs import registry

from .conftest import StaticEndpoints


class Client:
    """The same blunt blocking JSONL client the netserve tests use."""

    def __init__(self, address, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection(address, timeout=timeout)
        self.stream = self.sock.makefile("rwb")

    def send(self, payload) -> None:
        if isinstance(payload, (bytes, bytearray)):
            line = bytes(payload)
        else:
            line = json.dumps(payload).encode("utf-8")
        self.stream.write(line + b"\n")
        self.stream.flush()

    def recv_raw(self) -> bytes:
        line = self.stream.readline()
        assert line, "server closed the connection unexpectedly"
        return line

    def recv(self) -> dict:
        return json.loads(self.recv_raw())

    def ask(self, payload) -> dict:
        self.send(payload)
        return self.recv()

    def ask_raw(self, payload) -> bytes:
        self.send(payload)
        return self.recv_raw()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def match_payload(raw: bytes) -> str:
    """A wire response minus the only field allowed to differ
    (``elapsed_ms``).  ``trace_id`` stays in: the callers send an
    explicit trace context, so both sides must echo that exact id."""
    body = {key: value for key, value in json.loads(raw).items()
            if key != "elapsed_ms"}
    return json.dumps(body, sort_keys=True)


def trace_ctx(trace_id: str) -> dict:
    """A caller-minted trace context, as a downstream client sends it."""
    return {"trace_id": trace_id, "parent_span": "s0"}


class TestBitIdentity:
    def test_routed_equals_single_process_over_the_wire(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, single_address = shard_cluster
        _, routed_address = run_router(endpoints)
        routed = Client(routed_address)
        single = Client(single_address)
        vertices = [int(v) for v in fitted_hard.vertex_ids][:6]
        for i, vertex in enumerate(vertices):
            request = {"id": f"q{i}", "vertex": vertex, "top_k": 4,
                       "trace": trace_ctx(f"bit-{i}")}
            routed_raw = routed.ask_raw(request)
            assert json.loads(routed_raw)["trace_id"] == f"bit-{i}", \
                "router minted its own id instead of joining the caller's"
            assert match_payload(routed_raw) == \
                match_payload(single.ask_raw(request)), f"vertex {vertex}"
        routed.close()
        single.close()

    def test_default_top_k_also_identical(self, shard_cluster, run_router,
                                          fitted_hard):
        """No ``top_k`` in the request: the router must adopt the
        workers' default, not invent one."""
        endpoints, single_address = shard_cluster
        _, routed_address = run_router(endpoints)
        routed = Client(routed_address)
        single = Client(single_address)
        vertex = int(fitted_hard.vertex_ids[0])
        request = {"id": "dflt", "vertex": vertex,
                   "trace": trace_ctx("dflt-trace")}
        assert match_payload(routed.ask_raw(request)) == \
            match_payload(single.ask_raw(request))
        routed.close()
        single.close()

    def test_typed_errors_forwarded_verbatim(self, shard_cluster,
                                             run_router):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        response = client.ask({"id": "bad", "vertex": 10 ** 9})
        client.close()
        assert response["ok"] is False and response["id"] == "bad"
        assert response["error"]["type"] == "bad_request"


class TestInfo:
    def test_info_reports_the_fleet(self, shard_cluster, run_router,
                                    fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        response = client.ask({"op": "info", "id": "i1"})
        client.close()
        assert response["ok"] is True and response["id"] == "i1"
        info = response["info"]
        assert info["vertices"] == [int(v) for v in fitted_hard.vertex_ids]
        assert info["images"] == len(fitted_hard.images)
        assert info["shards"] == {"total": 3, "live": 3}
        assert "shard" not in info, "per-worker detail must not leak"

    def test_workers_annotate_their_slot(self, shard_cluster):
        """Direct-to-worker info names the partition — the router's
        debugging backdoor."""
        endpoints, _ = shard_cluster
        info = fetch_info(endpoints.address_of(1))
        assert info["shard"]["slot"] == 1
        assert info["shard"]["count"] == 3
        assert 0 < info["shard"]["owned_images"] < info["images"]


class TestPartialDegradation:
    def test_dead_shard_costs_coverage_not_availability(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints, shard_timeout_ms=2000.0)
        endpoints.addresses[2] = None  # the worker "died"
        client = Client(address)
        response = client.ask({"id": "p1", "top_k": 4,
                               "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert response["ok"] is True
        assert response["degraded"] is True
        assert response["reason"] == "partial"
        assert response["shards_answered"] == 2
        assert response["shards_total"] == 3
        assert len(response["matches"]) == 4
        owned_by_2 = registry().counter("shard.2.failed_total").value
        assert owned_by_2 >= 1
        assert registry().counter("shard.router.partial_total").value >= 1

    def test_all_shards_down_is_typed_unavailable(self, shard_cluster,
                                                  run_router):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        endpoints.addresses[:] = [None, None, None]
        client = Client(address)
        response = client.ask({"id": "u1", "vertex": 1, "top_k": 1})
        client.close()
        assert response["ok"] is False and response["id"] == "u1"
        assert response["error"]["type"] == "unavailable"
        assert registry().counter(
            "shard.router.unavailable_total").value == 1


class TestBreakerRecovery:
    def test_open_skip_then_halfopen_heals_to_bit_identity(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, single_address = shard_cluster
        _, address = run_router(endpoints, breaker_window=4,
                                breaker_min_calls=2,
                                breaker_failure_threshold=0.5,
                                breaker_cooldown_ms=200.0)
        vertex = int(fitted_hard.vertex_ids[0])
        client = Client(address)
        stashed = endpoints.addresses[1]
        endpoints.addresses[1] = None  # kill: the worker is unreachable
        for i in range(4):  # feed the breaker failures until it opens
            response = client.ask({"id": i, "vertex": vertex, "top_k": 3})
            assert response["ok"] is True and response["reason"] == "partial"
        assert registry().counter("shard.1.skipped_total").value >= 1, \
            "breaker never opened — shard 1 kept being dialed"
        # revive the worker and let the cooldown elapse
        endpoints.addresses[1] = stashed
        time.sleep(0.25)
        single = Client(single_address)
        deadline = time.monotonic() + 10.0
        healed = False
        while time.monotonic() < deadline and not healed:
            request = {"id": "heal", "vertex": vertex, "top_k": 3,
                       "trace": trace_ctx("heal-trace")}
            routed_raw = client.ask_raw(request)
            healed = json.loads(routed_raw).get("reason") != "partial"
            if healed:
                assert match_payload(routed_raw) == \
                    match_payload(single.ask_raw(request))
            else:
                time.sleep(0.1)
        client.close()
        single.close()
        assert healed, "breaker never closed after the worker came back"


class TestHedging:
    def test_stalled_pooled_connection_is_hedged_fresh(self, run_router):
        """First (pooled) connection swallows requests; every fresh
        connection answers fast.  The hedge must win."""
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(0.2)
        stop = threading.Event()
        connections = itertools.count()

        def serve(conn, index):
            stream = conn.makefile("rwb")
            for line in stream:
                try:
                    request = json.loads(line)
                except ValueError:
                    continue
                if index == 0 and request.get("op") != "info":
                    stop.wait(20.0)  # the stall the hedge routes around
                    return
                body = {"id": request.get("id"), "ok": True,
                        "vertex": request.get("vertex"), "tier": "full",
                        "degraded": False,
                        "matches": [{"image": 7, "score": 1.0}],
                        "elapsed_ms": 0.1}
                stream.write((json.dumps(body) + "\n").encode("utf-8"))
                stream.flush()

        def accept_loop():
            while not stop.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                threading.Thread(target=serve,
                                 args=(conn, next(connections)),
                                 daemon=True).start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        try:
            endpoints = StaticEndpoints([server.getsockname()[:2]])
            _, address = run_router(endpoints, shard_timeout_ms=8000.0,
                                    hedge_fraction=0.05)
            client = Client(address)
            started = time.monotonic()
            response = client.ask({"id": "h1", "vertex": 3, "top_k": 1})
            elapsed = time.monotonic() - started
            client.close()
            assert response["ok"] is True
            assert response["matches"] == [{"image": 7, "score": 1.0}]
            assert response.get("degraded") is False
            assert elapsed < 6.0, "answer came from the stall, not the hedge"
            assert registry().counter("shard.0.hedges_total").value == 1
            assert registry().counter("shard.0.answered_total").value == 1
        finally:
            stop.set()
            server.close()
            acceptor.join(timeout=5.0)


class TestProtocolEdges:
    def test_oversized_line_answered_and_connection_survives(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        huge = b'{"id": "big", "padding": "' + \
            b"x" * (MAX_LINE_BYTES + 1024) + b'"}'
        response = client.ask(huge)
        assert response["ok"] is False and response["id"] is None
        assert response["error"]["type"] == "bad_request"
        assert registry().counter(
            "shard.router.oversized_line").value == 1
        good = client.ask({"id": "after", "top_k": 1,
                           "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert good["ok"] is True and good["id"] == "after"

    def test_bad_json_line_answered_not_fatal(self, shard_cluster,
                                              run_router, fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        bad = client.ask(b"{this is not json")
        assert bad["ok"] is False
        assert bad["error"]["type"] == "bad_request"
        good = client.ask({"id": "after", "top_k": 1,
                           "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert good["ok"] is True and good["id"] == "after"

    def test_non_object_request_rejected(self, shard_cluster, run_router):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        response = client.ask([1, 2, 3])
        client.close()
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"
        assert "JSON object" in response["error"]["message"]


class TestLoadHarness:
    def test_open_loop_schedule_through_the_router(self, shard_cluster,
                                                   run_router,
                                                   fitted_hard):
        """`load run --connect` pointed at the router, unchanged."""
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        config = LoadConfig(process="uniform", rate=100.0, duration=0.25,
                            seed=5)
        schedule = build_schedule(config,
                                  [int(v) for v in fitted_hard.vertex_ids])
        report = run_schedule(SocketDriver(address), schedule)
        summary = report.summary()
        assert summary["offered"] == len(schedule)
        assert summary["outcomes"]["lost"] == 0
        assert summary["outcomes"]["ok"] == len(schedule)
        assert summary["availability"] == 1.0
