"""The partition contract and the exact cross-shard merge.

The marquee property: for any scores (ties included), masking each
shard to its owned positions, taking per-shard top-k with the shared
``(-score, position)`` order, and merging with ``(-score, image id)``
reconstructs the single-process top-k exactly.  The test plants
deliberate score ties straddling shard boundaries — the case a naive
merge gets wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.topk import deterministic_topk
from repro.shard import merge_matches, owned_mask, owned_positions, worst_tier


class TestPartition:
    @pytest.mark.parametrize("total,count", [(10, 3), (7, 7), (5, 1),
                                             (16, 4), (3, 5)])
    def test_positions_cover_and_never_overlap(self, total, count):
        seen = np.concatenate([owned_positions(total, count, slot)
                               for slot in range(count)])
        assert sorted(seen.tolist()) == list(range(total))

    @pytest.mark.parametrize("total,count", [(10, 3), (16, 4), (3, 5)])
    def test_mask_agrees_with_positions(self, total, count):
        for slot in range(count):
            mask = owned_mask(total, count, slot)
            assert mask.dtype == np.bool_ and mask.shape == (total,)
            assert np.flatnonzero(mask).tolist() == \
                owned_positions(total, count, slot).tolist()

    def test_slot_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            owned_positions(10, 3, 3)
        with pytest.raises(ValueError):
            owned_mask(10, 3, -1)


def shard_matches(scores, image_ids, count, slot, top_k):
    """Exactly what a masked MatchService does at selection time."""
    finite = np.flatnonzero(owned_mask(len(scores), count, slot))
    order = finite[deterministic_topk(scores[finite],
                                      min(top_k, len(finite)))]
    return [{"image": int(image_ids[i]), "score": float(scores[i])}
            for i in order]


class TestMerge:
    def test_planted_ties_across_shards_match_the_oracle(self):
        # ids ascend with position (the repository invariant the
        # contract leans on) but are not equal to positions
        image_ids = 100 + 3 * np.arange(12)
        # two three-way ties, each straddling all three shards
        scores = np.array([9.0, 9.0, 9.0, 5.0, 7.5, 7.5,
                           7.5, 1.0, 2.0, 5.0, 0.5, 5.0])
        for top_k in (1, 3, 5, 8, 12):
            oracle_order = deterministic_topk(scores, top_k)
            oracle = [{"image": int(image_ids[i]),
                       "score": float(scores[i])} for i in oracle_order]
            merged = merge_matches(
                [shard_matches(scores, image_ids, 3, slot, top_k)
                 for slot in range(3)], top_k)
            assert merged == oracle, f"top_k={top_k}"

    def test_random_scores_match_the_oracle(self):
        rng = np.random.default_rng(42)
        image_ids = np.arange(50)
        for count in (2, 3, 7):
            # quantized draws manufacture plenty of accidental ties
            scores = rng.integers(0, 10, size=50).astype(np.float64) / 2.0
            oracle_order = deterministic_topk(scores, 10)
            oracle = [{"image": int(image_ids[i]),
                       "score": float(scores[i])} for i in oracle_order]
            merged = merge_matches(
                [shard_matches(scores, image_ids, count, slot, 10)
                 for slot in range(count)], 10)
            assert merged == oracle, f"count={count}"

    def test_merge_preserves_match_dicts_untouched(self):
        """Byte-identity depends on the merge never rebuilding dicts —
        the shards' own objects must flow through."""
        a = {"image": 5, "score": 1.0}
        b = {"image": 2, "score": 0.5}
        merged = merge_matches([[a], [b]], 2)
        assert merged[0] is a and merged[1] is b

    def test_tie_breaks_by_ascending_image_id(self):
        merged = merge_matches(
            [[{"image": 5, "score": 1.0}, {"image": 2, "score": 0.5}],
             [{"image": 3, "score": 1.0}, {"image": 9, "score": 0.5}]], 3)
        assert [m["image"] for m in merged] == [3, 5, 2]


class TestWorstTier:
    def test_orders_the_ladder(self):
        assert worst_tier(["full", "full"]) == "full"
        assert worst_tier(["full", "cached"]) == "cached"
        assert worst_tier(["cached", "stale", "full"]) == "stale"

    def test_unknown_tier_ranks_worst(self):
        assert worst_tier(["full", "mystery"]) == "mystery"

    def test_empty_is_none(self):
        assert worst_tier([]) is None
