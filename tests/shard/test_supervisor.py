"""Worker lifecycle under fault injection.

These tests spawn *real* subprocesses — a tiny stand-in worker that
speaks just enough of the protocol (port file + ``info``) to pass the
supervisor's health check in milliseconds instead of the seconds a
model fit costs — and then kill them, crash-loop them, and stop them,
asserting the restart policy from the outside: via ``states()``,
``address_of()``, the pid files, and the exported metrics.
"""

from __future__ import annotations

import os
import signal
import sys
import time

import pytest

from repro.obs import registry
from repro.shard import SupervisorConfig, WorkerSupervisor
from repro.shard.supervisor import (STATE_BACKOFF, STATE_DEAD, STATE_LIVE,
                                    STATE_STOPPED)

FAKE_WORKER = r"""
import json, os, signal, socket, sys, threading

port_file, mode = sys.argv[1], sys.argv[2]
if mode == "crash":
    sys.exit(13)
server = socket.create_server(("127.0.0.1", 0))
host, port = server.getsockname()[:2]
with open(port_file, "w") as handle:
    handle.write(f"{host}:{port}\n")
signal.signal(signal.SIGTERM, lambda *_: os._exit(0))


def serve(conn):
    stream = conn.makefile("rwb")
    for line in stream:
        try:
            request = json.loads(line)
        except ValueError:
            continue
        if request.get("op") == "info":
            body = {"id": request.get("id"), "ok": True,
                    "info": {"images": 4, "top_k_default": 1, "pid":
                             os.getpid()}}
        else:
            body = {"id": request.get("id"), "ok": True,
                    "vertex": request.get("vertex"), "tier": "full",
                    "degraded": False, "matches": [], "elapsed_ms": 0.0}
        stream.write((json.dumps(body) + "\n").encode("utf-8"))
        stream.flush()


while True:
    conn, _ = server.accept()
    threading.Thread(target=serve, args=(conn,), daemon=True).start()
"""


def fast_config(**overrides) -> SupervisorConfig:
    settings = dict(spawn_timeout_s=30.0, health_timeout_s=2.0,
                    poll_interval_s=0.05, backoff_base_s=0.1,
                    backoff_cap_s=0.5, flap_max=4, flap_window_s=10.0,
                    stop_timeout_s=10.0)
    settings.update(overrides)
    return SupervisorConfig(**settings)


@pytest.fixture()
def worker_script(tmp_path):
    script = tmp_path / "fake_worker.py"
    script.write_text(FAKE_WORKER)
    return script


@pytest.fixture()
def make_supervisor(worker_script, tmp_path):
    created = []

    def make(count=2, mode="ok", config=None) -> WorkerSupervisor:
        def command_for_slot(slot, port_file):
            return [sys.executable, str(worker_script), str(port_file),
                    mode]

        supervisor = WorkerSupervisor(
            command_for_slot, count, tmp_path / "work",
            config if config is not None else fast_config())
        created.append(supervisor)
        return supervisor

    yield make
    for supervisor in created:
        supervisor.stop(timeout=10.0)


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(message)


class TestStartAndStop:
    def test_start_blocks_until_every_worker_answers_info(
            self, make_supervisor):
        supervisor = make_supervisor(count=2).start()
        assert supervisor.states() == [STATE_LIVE, STATE_LIVE]
        assert supervisor.live_count() == 2
        addresses = {supervisor.address_of(0), supervisor.address_of(1)}
        assert None not in addresses and len(addresses) == 2

    def test_pid_files_name_the_real_processes(self, make_supervisor):
        supervisor = make_supervisor(count=2).start()
        for slot in range(2):
            pid = int((supervisor.work_dir /
                       f"worker{slot}.pid").read_text())
            os.kill(pid, 0)  # raises if no such process

    def test_stop_reaps_everything(self, make_supervisor):
        supervisor = make_supervisor(count=2).start()
        pids = [int((supervisor.work_dir / f"worker{slot}.pid")
                    .read_text()) for slot in range(2)]
        supervisor.stop(timeout=10.0)
        assert supervisor.states() == [STATE_STOPPED, STATE_STOPPED]
        assert supervisor.address_of(0) is None
        for pid in pids:
            wait_until(lambda p=pid: not _alive(p), 5.0,
                       f"worker {pid} survived stop()")

    def test_start_failure_names_states_and_logs(self, make_supervisor):
        supervisor = make_supervisor(
            count=1, mode="crash",
            config=fast_config(flap_max=2, spawn_timeout_s=10.0))
        with pytest.raises(RuntimeError) as failure:
            supervisor.start()
        assert "dead" in str(failure.value)
        assert str(supervisor.work_dir) in str(failure.value)


class TestRestartPolicy:
    def test_sigkill_is_healed_on_a_fresh_port(self, make_supervisor):
        supervisor = make_supervisor(count=2).start()
        before = supervisor.address_of(1)
        pid = int((supervisor.work_dir / "worker1.pid").read_text())
        os.kill(pid, signal.SIGKILL)
        wait_until(lambda: supervisor.address_of(1) is None, 10.0,
                   "death never noticed")
        # slot 0 is untouched throughout
        assert supervisor.address_of(0) is not None
        wait_until(lambda: supervisor.address_of(1) is not None, 20.0,
                   "worker never restarted")
        after = supervisor.address_of(1)
        assert after != before, "a respawn binds a fresh ephemeral port"
        new_pid = int((supervisor.work_dir / "worker1.pid").read_text())
        assert new_pid != pid
        snapshot = registry().snapshot()
        counters = {row["name"]: row["value"] for row in snapshot
                    if row.get("type") == "counter"}
        assert counters.get("shard.1.deaths_total", 0) >= 1
        assert counters.get("shard.1.restarts_total", 0) >= 1
        assert counters.get("shard.restarts_total", 0) >= 1

    def test_flapping_worker_is_marked_dead_not_respawned_forever(
            self, make_supervisor):
        supervisor = make_supervisor(
            count=1, mode="crash",
            config=fast_config(flap_max=3, backoff_base_s=0.05))
        supervisor.start(wait_healthy=False)
        wait_until(lambda: supervisor.states() == [STATE_DEAD], 20.0,
                   f"never marked dead: {supervisor.states()}")
        # dead means dead: no further spawns after the verdict
        deaths = registry().counter("shard.0.deaths_total").value
        time.sleep(0.5)
        assert supervisor.states() == [STATE_DEAD]
        assert registry().counter("shard.0.deaths_total").value == deaths
        assert supervisor.live_count() == 0

    def test_backoff_spaces_the_restarts(self, make_supervisor):
        supervisor = make_supervisor(
            count=1,
            config=fast_config(backoff_base_s=0.4, flap_max=10)).start()
        pid = int((supervisor.work_dir / "worker0.pid").read_text())
        killed_at = time.monotonic()
        os.kill(pid, signal.SIGKILL)
        wait_until(lambda: supervisor.states() == [STATE_BACKOFF], 10.0,
                   "death never noticed")
        wait_until(lambda: supervisor.address_of(0) is not None, 20.0,
                   "worker never restarted")
        # first restart waits at least the base backoff
        assert time.monotonic() - killed_at >= 0.4


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
        return True
    except OSError:
        return False
