"""Cross-process trace stitching under health, hedges and faults.

PR 10's tentpole: the router joins the caller's trace, fans a child
context out to every shard attempt, and grafts the worker-side span
trees (shipped back in the compact ``trace`` response field) into one
causal timeline.  These tests drive that over real sockets and assert
the *shape* of the stitched tree: shard spans under the root, attempt
spans under the shards, worker subtrees (tagged with their process)
under the attempt that won — and, under faults, typed ``trace_gap``
events instead of crashes, with forced retention keeping the partial
story even at sample rate 0.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time

from repro.obs import registry, trace_recorder

from .conftest import StaticEndpoints
from .test_router import Client, trace_ctx


def stitch_ctx(trace_id: str) -> dict:
    """A caller context that also asks for the stitched tree back."""
    return dict(trace_ctx(trace_id), return_spans=True)


def spans_named(row: dict, prefix: str) -> list:
    """Every span row in ``row``'s tree whose name starts ``prefix``."""
    found = []
    if row.get("name", "").startswith(prefix):
        found.append(row)
    for child in row.get("children", ()):
        found.extend(spans_named(child, prefix))
    return found


def events_of(row: dict, kind: str) -> list:
    """Every ``kind`` event anywhere in ``row``'s tree."""
    found = [e for e in row.get("events", ()) if e.get("kind") == kind]
    for child in row.get("children", ()):
        found.extend(events_of(child, kind))
    return found


class TestStitching:
    def test_three_shard_fan_out_stitches_into_one_timeline(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        request = {"id": "st1", "top_k": 3,
                   "vertex": int(fitted_hard.vertex_ids[0]),
                   "trace": stitch_ctx("stitch-1")}
        response = client.ask(request)
        client.close()
        assert response["ok"] is True
        assert response["trace_id"] == "stitch-1"
        wire = response["trace"]
        root = wire["spans"]
        assert root["name"] == "route.request"
        # one shard span per slot, each with at least a pooled attempt
        shard_spans = spans_named(root, "shard/")
        assert sorted(s["name"] for s in shard_spans) == \
            ["shard/0", "shard/1", "shard/2"]
        for shard_span in shard_spans:
            attempts = spans_named(shard_span, "attempt/")
            assert attempts, f"{shard_span['name']} has no attempt span"
            # the worker's own tree landed under an attempt, re-based
            # and tagged with the process it came from
            grafted = [child for attempt in attempts
                       for child in attempt.get("children", ())
                       if child.get("process", "").startswith("shard")]
            assert grafted, f"{shard_span['name']} grafted no subtree"
            assert grafted[0]["name"] == "serve.request"
            assert grafted[0]["start_ms"] >= 0.0

    def test_stitched_trace_lands_in_the_recorder(
            self, shard_cluster, run_router, fitted_hard):
        """``repro obs report`` reads the recorder: the row must be
        there, under the caller's id, spanning >= 2 processes."""
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        client.ask({"id": "st2", "top_k": 2,
                    "vertex": int(fitted_hard.vertex_ids[1]),
                    "trace": stitch_ctx("stitch-2")})
        client.close()
        rows = [row for row in trace_recorder().snapshot()
                if row.get("trace_id") == "stitch-2"
                and row.get("name") == "route.request"]
        assert rows, "router never recorded the joined trace"
        processes = {span.get("process") for span
                     in spans_named(rows[-1]["spans"], "serve.request")}
        assert len(processes & {"shard0", "shard1", "shard2"}) >= 2


class TestHedgedTraces:
    def test_hedge_shows_both_attempts_and_the_winner(self, run_router):
        """Stalled pooled connection, fast fresh connections: the
        stitched tree must show the pooled *and* the hedge attempt as
        siblings, plus a ``hedge_won`` event."""
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(0.2)
        stop = threading.Event()
        connections = itertools.count()

        def serve(conn, index):
            stream = conn.makefile("rwb")
            for line in stream:
                try:
                    request = json.loads(line)
                except ValueError:
                    continue
                if index == 0 and request.get("op") != "info":
                    stop.wait(20.0)
                    return
                body = {"id": request.get("id"), "ok": True,
                        "vertex": request.get("vertex"), "tier": "full",
                        "degraded": False,
                        "matches": [{"image": 7, "score": 1.0}],
                        "elapsed_ms": 0.1}
                stream.write((json.dumps(body) + "\n").encode("utf-8"))
                stream.flush()

        def accept_loop():
            while not stop.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                threading.Thread(target=serve,
                                 args=(conn, next(connections)),
                                 daemon=True).start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        try:
            endpoints = StaticEndpoints([server.getsockname()[:2]])
            _, address = run_router(endpoints, shard_timeout_ms=8000.0,
                                    hedge_fraction=0.05)
            client = Client(address)
            response = client.ask({"id": "h1", "vertex": 3, "top_k": 1,
                                   "trace": stitch_ctx("hedge-1")})
            client.close()
            assert response["ok"] is True
            root = response["trace"]["spans"]
            names = sorted(s["name"]
                           for s in spans_named(root, "attempt/"))
            assert names == ["attempt/hedge", "attempt/pooled"]
            won = events_of(root, "hedge_won")
            assert won and won[0]["attrs"]["winner"] == "hedge"
            # the fake worker speaks no trace protocol: a typed gap,
            # not a crash
            gaps = events_of(root, "trace_gap")
            assert gaps and gaps[0]["attrs"]["reason"] == "unsampled"
        finally:
            stop.set()
            server.close()
            acceptor.join(timeout=5.0)


class TestFaultTraces:
    def test_dead_shard_leaves_typed_gap_not_crash(
            self, shard_cluster, run_router, fitted_hard):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints, shard_timeout_ms=2000.0)
        endpoints.addresses[2] = None  # SIGKILL, as the router sees it
        client = Client(address)
        response = client.ask({"id": "g1", "top_k": 3,
                               "vertex": int(fitted_hard.vertex_ids[0]),
                               "trace": stitch_ctx("gap-1")})
        client.close()
        assert response["ok"] is True and response["degraded"] is True
        wire = response["trace"]
        assert "degraded" in wire["flags"]
        dead_span = spans_named(wire["spans"], "shard/2")[0]
        gaps = events_of(dead_span, "trace_gap")
        assert gaps, "dead shard left no trace_gap event"
        assert gaps[0]["attrs"]["reason"] in ("failed", "late", "skipped")
        # the two live shards still stitched their subtrees in
        assert spans_named(wire["spans"], "serve.request")

    def test_forced_retention_keeps_partials_at_rate_zero(
            self, shard_cluster, run_router, fitted_hard):
        """Sample rate 0: healthy traces are dropped, but a degraded
        (partial) answer is flagged and force-retained — the
        interesting tail is never sampled away."""
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints, shard_timeout_ms=2000.0,
                                trace_sample_rate=0.0)
        client = Client(address)
        vertex = int(fitted_hard.vertex_ids[0])
        healthy = client.ask({"id": "f0", "top_k": 2, "vertex": vertex,
                              "trace": stitch_ctx("forced-healthy")})
        assert healthy["ok"] is True
        assert healthy["trace_id"] == "forced-healthy"
        assert "trace" not in healthy, \
            "unflagged trace returned spans despite rate 0"
        endpoints.addresses[2] = None
        partial = client.ask({"id": "f1", "top_k": 2, "vertex": vertex,
                              "trace": stitch_ctx("forced-partial")})
        client.close()
        assert partial["degraded"] is True
        assert "trace" in partial, "flagged trace was sampled away"
        assert "degraded" in partial["trace"]["flags"]
        recorded = {row.get("trace_id")
                    for row in trace_recorder().snapshot()
                    if row.get("name") == "route.request"}
        assert "forced-partial" in recorded
        assert "forced-healthy" not in recorded


class TestFleetScrape:
    def test_stats_op_aggregates_the_fleet_live(
            self, shard_cluster, run_router, fitted_hard):
        """One ``stats`` exchange against the router answers with the
        whole fleet: per-shard sections, labeled families, and merged
        bucket histograms — without stopping anything.  (The workers
        share this process's registry, so sums are not asserted —
        structure is; the CI fleet test covers real processes.)"""
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints)
        client = Client(address)
        # traffic first, so the scrape has rows to show
        for i in range(4):
            client.ask({"id": f"w{i}", "top_k": 2,
                        "vertex": int(fitted_hard.vertex_ids[i])})
        response = client.ask({"op": "stats", "id": "s1"})
        assert response["ok"] is True and response["id"] == "s1"
        stats = response["stats"]
        assert stats["shards"] == {"total": 3, "answered": 3}
        assert sorted(stats["per_shard"]) == ["0", "1", "2"]
        for slot, section in stats["per_shard"].items():
            assert isinstance(section["metrics"], list), slot
            assert section["captured_unix"] > 0, slot
        labeled = {row["labels"]["shard"] for row in stats["metrics"]
                   if isinstance(row.get("labels"), dict)
                   and "shard" in row["labels"]}
        assert labeled == {"0", "1", "2"}
        latency = [row for row in stats["metrics"]
                   if row["name"] == "serve.request_ms"
                   and "labels" not in row]
        assert latency and "buckets" in latency[0], \
            "per-shard latency histograms were not merged bucketwise"
        assert stats["captured_unix"] > 0
        # a second exchange on the same connection still serves matches:
        # the scrape never wedged the router
        after = client.ask({"id": "after", "top_k": 1,
                            "vertex": int(fitted_hard.vertex_ids[0])})
        client.close()
        assert after["ok"] is True

    def test_scrape_survives_a_dead_shard(self, shard_cluster,
                                          run_router):
        endpoints, _ = shard_cluster
        _, address = run_router(endpoints, stats_timeout_ms=1500.0)
        endpoints.addresses[1] = None
        client = Client(address)
        response = client.ask({"op": "stats", "id": "s2"})
        client.close()
        assert response["ok"] is True
        stats = response["stats"]
        assert stats["shards"] == {"total": 3, "answered": 2}
        assert stats["per_shard"]["1"] is None
        assert registry().counter("shard.1.scrape_failed_total").value >= 1
