"""JSON document substrate tests."""

import pytest

from repro.datalake.json_doc import JsonDocument, JsonObject


class TestJsonObject:
    def test_scalar_items_flatten_nesting(self):
        obj = JsonObject("k", {"a": {"b": 1}, "c": [2, 3]})
        items = dict(obj.scalar_items())
        assert items == {"a.b": "1", "c[0]": "2", "c[1]": "3"}

    def test_plain_scalars(self):
        obj = JsonObject("k", {"color": "white"})
        assert list(obj.scalar_items()) == [("color", "white")]


class TestJsonDocument:
    def test_add_and_get(self):
        doc = JsonDocument([JsonObject("a", {"x": 1})])
        assert len(doc) == 1
        assert "a" in doc
        assert doc.get("a").fields["x"] == 1

    def test_duplicate_key_raises(self):
        doc = JsonDocument([JsonObject("a", {})])
        with pytest.raises(ValueError):
            doc.add(JsonObject("a", {}))

    def test_objects_order(self):
        doc = JsonDocument([JsonObject("a", {}), JsonObject("b", {})])
        assert [o.key for o in doc.objects()] == ["a", "b"]
