"""Unstructured text → graph mapping tests (§II-A)."""

import pytest

from repro.datalake.mapping import DataLake
from repro.datalake.text_source import SentenceParser, Triple, text_to_graph
from repro.datasets.world import ConceptUniverse
from repro.text.corpus import build_text_corpus


@pytest.fixture()
def parser():
    return SentenceParser(["laysan albatross", "woodpecker"])


class TestSentenceParser:
    def test_empty_gazetteer_rejected(self):
        with pytest.raises(ValueError):
            SentenceParser([])

    def test_attribute_record_pattern(self, parser):
        triples = parser.parse("laysan albatross has crown color in white")
        assert Triple("laysan albatross", "has crown color", "white") in triples

    def test_eats_lives_is_patterns(self, parser):
        assert parser.parse("woodpecker eats insects") == [
            Triple("woodpecker", "has food", "insects")]
        assert parser.parse("woodpecker lives in forest") == [
            Triple("woodpecker", "has habitat", "forest")]
        assert parser.parse("woodpecker is from north") == [
            Triple("woodpecker", "has origin", "north")]
        assert parser.parse("woodpecker is tiny") == [
            Triple("woodpecker", "has size", "tiny")]

    def test_with_phrase_pattern(self, parser):
        triples = parser.parse(
            "a photo of a laysan albatross with white crown and black tail")
        assert Triple("laysan albatross", "has crown color", "white") in triples
        assert Triple("laysan albatross", "has tail color", "black") in triples

    def test_unknown_subject_skipped(self, parser):
        assert parser.parse("a penguin eats fish") == []

    def test_longest_name_wins(self):
        parser = SentenceParser(["albatross", "laysan albatross"])
        triples = parser.parse("laysan albatross eats fish")
        assert triples[0].subject == "laysan albatross"

    def test_corpus_deduplicates(self, parser):
        sentences = ["woodpecker eats insects"] * 3
        assert len(parser.parse_corpus(sentences)) == 1


class TestTextToGraph:
    def test_entities_and_attributes(self):
        sentences = ["woodpecker eats insects",
                     "woodpecker lives in forest",
                     "heron eats fish"]
        graph, entities = text_to_graph(sentences, ["woodpecker", "heron"])
        assert set(entities) == {"woodpecker", "heron"}
        assert graph.num_edges == 3
        labels = {e.label for e in graph.out_edges(entities["woodpecker"])}
        assert labels == {"has food", "has habitat"}

    def test_attribute_vertices_shared(self):
        sentences = ["woodpecker eats insects", "heron eats insects"]
        graph, _ = text_to_graph(sentences, ["woodpecker", "heron"])
        insects = [v for v in graph.vertices() if v.label == "insects"]
        assert len(insects) == 1

    def test_datalake_text_source(self):
        lake = DataLake()
        lake.add_text(["woodpecker eats insects"], ["woodpecker"])
        graph = lake.unified_graph()
        assert lake.num_sources == 1
        assert graph.num_vertices == 2

    def test_parses_real_synthetic_corpus(self):
        """The parser must recover a substantial share of the facts the
        world's own corpus generator emits."""
        universe = ConceptUniverse(6, seed=9)
        sentences = build_text_corpus(universe, seed=9)
        names = [c.name for c in universe]
        graph, entities = text_to_graph(sentences, names)
        assert set(entities) == set(names)
        # every entity should have recovered several attribute edges
        for name, vertex in entities.items():
            assert len(graph.out_edges(vertex)) >= 3, name
