"""Neighbor aggregation tests (Eq. 6 support)."""

import numpy as np
import pytest

from repro.datalake.aggregate import (GNNAggregator, GraphSageAggregator,
                                      aggregate_soft_features)
from repro.datalake.graph import Graph


@pytest.fixture()
def star():
    """Center 0 with leaves 1..3 plus isolated vertex 4."""
    graph = Graph()
    for i in range(5):
        graph.add_vertex(f"v{i}")
    for leaf in (1, 2, 3):
        graph.add_edge(0, leaf)
    return graph


@pytest.fixture()
def features():
    return {i: np.eye(5, dtype=np.float32)[i] for i in range(5)}


class TestGNNAggregator:
    def test_blends_neighbors(self, star, features):
        out = GNNAggregator(rounds=1, self_weight=0.5)(star, features)
        expected = 0.5 * features[0] + 0.5 * np.mean(
            [features[1], features[2], features[3]], axis=0)
        np.testing.assert_allclose(out[0], expected, atol=1e-6)

    def test_isolated_vertex_unchanged(self, star, features):
        out = GNNAggregator()(star, features)
        np.testing.assert_allclose(out[4], features[4])

    def test_self_weight_one_is_identity(self, star, features):
        out = GNNAggregator(self_weight=1.0)(star, features)
        for key in features:
            np.testing.assert_allclose(out[key], features[key], atol=1e-6)

    def test_invalid_self_weight(self):
        with pytest.raises(ValueError):
            GNNAggregator(self_weight=2.0)


class TestGraphSage:
    def test_fanout_bounds_sampling(self, star, features):
        out = GraphSageAggregator(fanout=1, seed=0)(star, features)
        # with fanout 1 the center mixes with exactly one leaf
        mixed = out[0]
        assert mixed[0] == pytest.approx(0.5, abs=1e-6)
        assert np.isclose(mixed[1:4], 0.5).sum() == 1

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            GraphSageAggregator(fanout=0)

    def test_deterministic_with_seed(self, star, features):
        a = GraphSageAggregator(fanout=2, seed=5)(star, features)
        b = GraphSageAggregator(fanout=2, seed=5)(star, features)
        for key in a:
            np.testing.assert_allclose(a[key], b[key])


class TestEq6:
    def test_alpha_one_keeps_structural_feature(self, star, features):
        out = aggregate_soft_features(star, features, alpha=1.0,
                                      aggregator=GNNAggregator(self_weight=1.0))
        for key in features:
            np.testing.assert_allclose(out[key], features[key], atol=1e-6)

    def test_alpha_bounds_checked(self, star, features):
        with pytest.raises(ValueError):
            aggregate_soft_features(star, features, alpha=1.5)

    def test_blend_shape_and_dtype(self, star, features):
        out = aggregate_soft_features(star, features, alpha=0.3)
        assert out[0].dtype == np.float32
        assert out[0].shape == (5,)
