"""Relational table substrate tests."""

import pytest

from repro.datalake.table import ForeignKey, RelationalTable, TableSchema


class TestSchema:
    def test_duplicate_columns_raise(self):
        with pytest.raises(ValueError):
            TableSchema("t", ("a", "a"))

    def test_key_must_exist(self):
        with pytest.raises(ValueError):
            TableSchema("t", ("a",), key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(ValueError):
            TableSchema("t", ("a",), foreign_keys=(ForeignKey("b", "other"),))

    def test_column_index(self):
        schema = TableSchema("t", ("a", "b", "c"))
        assert schema.column_index("b") == 1


class TestTable:
    def test_insert_and_access(self):
        table = RelationalTable(TableSchema("birds", ("name", "color"),
                                            key="name"))
        table.insert(["albatross", "white"])
        assert len(table) == 1
        assert table.value(0, "color") == "white"
        assert table.key_of(0) == "albatross"

    def test_insert_wrong_arity_raises(self):
        table = RelationalTable(TableSchema("t", ("a", "b")))
        with pytest.raises(ValueError):
            table.insert(["only-one"])

    def test_insert_dict_fills_missing(self):
        table = RelationalTable(TableSchema("t", ("a", "b")))
        table.insert_dict({"a": "x"})
        assert table.row(0) == ("x", "")

    def test_keyless_key_of(self):
        table = RelationalTable(TableSchema("t", ("a",)))
        table.insert(["x"])
        assert table.key_of(0) == "t#0"

    def test_rows_returns_copy(self):
        table = RelationalTable(TableSchema("t", ("a",)))
        table.insert(["x"])
        rows = table.rows()
        rows.append(("y",))
        assert len(table) == 1
