"""Graph substrate tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalake.graph import Graph


@pytest.fixture()
def chain():
    """0 -> 1 -> 2 -> 3 with labeled edges."""
    graph = Graph()
    for i in range(4):
        graph.add_vertex(f"v{i}")
    for i in range(3):
        graph.add_edge(i, i + 1, f"e{i}")
    return graph


class TestConstruction:
    def test_add_vertex_assigns_ids(self):
        graph = Graph()
        assert graph.add_vertex("a") == 0
        assert graph.add_vertex("b") == 1
        assert graph.num_vertices == 2

    def test_explicit_id_conflict_raises(self):
        graph = Graph()
        graph.add_vertex("a", vertex_id=3)
        with pytest.raises(ValueError):
            graph.add_vertex("b", vertex_id=3)

    def test_edge_requires_endpoints(self):
        graph = Graph()
        graph.add_vertex("a")
        with pytest.raises(KeyError):
            graph.add_edge(0, 99)

    def test_labels_and_kinds(self):
        graph = Graph()
        graph.add_vertex("white", kind="attribute")
        assert graph.label(0) == "white"
        assert graph.vertex(0).kind == "attribute"
        assert graph.entity_ids() == []


class TestNeighbors:
    def test_undirected_neighborhood(self, chain):
        assert chain.neighbors(1) == [2, 0]

    def test_no_duplicates_for_multi_edges(self):
        graph = Graph()
        graph.add_vertex("a")
        graph.add_vertex("b")
        graph.add_edge(0, 1, "x")
        graph.add_edge(0, 1, "y")
        assert graph.neighbors(0) == [1]

    def test_in_out_edges(self, chain):
        assert [e.target for e in chain.out_edges(1)] == [2]
        assert [e.source for e in chain.in_edges(1)] == [0]


class TestTraversal:
    def test_bfs_hops(self, chain):
        order = chain.bfs_order(0)
        assert order == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_bfs_bounded(self, chain):
        order = chain.bfs_order(0, max_hops=2)
        assert (3, 3) not in order

    def test_bfs_unknown_vertex(self, chain):
        with pytest.raises(KeyError):
            chain.bfs_order(99)

    def test_d_hop_vertices_excludes_self(self, chain):
        assert chain.d_hop_vertices(1, 1) == [2, 0]

    def test_d_hop_subgraph_is_induced(self, chain):
        sub = chain.d_hop_subgraph(1, 1)
        assert sorted(sub.vertex_ids()) == [0, 1, 2]
        labels = {(e.source, e.target) for e in sub.edges()}
        assert labels == {(0, 1), (1, 2)}

    def test_subgraph_preserves_labels(self, chain):
        sub = chain.d_hop_subgraph(0, 1)
        assert sub.label(1) == "v1"


class TestInterop:
    def test_to_networkx(self, chain):
        g = chain.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g.nodes[0]["label"] == "v0"

    def test_merge_reassigns_ids(self, chain):
        merged = Graph()
        merged.add_vertex("existing")
        mapping = merged.merge(chain)
        assert merged.num_vertices == 5
        assert merged.label(mapping[0]) == "v0"
        assert merged.num_edges == 3


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 12), st.integers(0, 30), st.integers(1, 3),
       st.integers(0, 10_000))
def test_property_subgraph_invariants(num_vertices, num_edges, d, seed):
    """Induced d-hop subgraphs: every vertex within d hops, every edge
    has both endpoints inside, labels preserved."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    for i in range(num_vertices):
        graph.add_vertex(f"v{i}")
    for _ in range(num_edges):
        a, b = rng.integers(num_vertices, size=2)
        if a != b:
            graph.add_edge(int(a), int(b), "e")
    root = int(rng.integers(num_vertices))
    sub = graph.d_hop_subgraph(root, d)
    hop_of = dict(graph.bfs_order(root, d))
    assert set(sub.vertex_ids()) == set(hop_of)
    for edge in sub.edges():
        assert edge.source in hop_of and edge.target in hop_of
    for vid in sub.vertex_ids():
        assert sub.label(vid) == graph.label(vid)
