"""Data mapping tests: tables/JSON → unified graph (§II-A)."""

import pytest

from repro.datalake.graph import Graph
from repro.datalake.json_doc import JsonDocument, JsonObject
from repro.datalake.mapping import (DataLake, json_to_graph, merge_graphs,
                                    table_to_graph)
from repro.datalake.table import ForeignKey, RelationalTable, TableSchema


@pytest.fixture()
def bird_table():
    schema = TableSchema("birds", ("name", "crown color", "habitat"),
                         key="name")
    table = RelationalTable(schema)
    table.insert(["laysan albatross", "white", "coast"])
    table.insert(["woodpecker", "white", "forest"])
    return table


class TestTableToGraph:
    def test_entities_and_attributes(self, bird_table):
        graph, rows = table_to_graph(bird_table)
        assert len(rows) == 2
        entities = graph.entity_ids()
        assert len(entities) == 2
        assert graph.label(rows[0]) == "laysan albatross"

    def test_shared_attribute_vertices(self, bird_table):
        graph, rows = table_to_graph(bird_table)
        # "white" appears in both rows but becomes one vertex
        white = [v for v in graph.vertices()
                 if v.label == "white" and v.kind == "attribute"]
        assert len(white) == 1
        neighbors = graph.neighbors(white[0].vertex_id)
        assert set(neighbors) == {rows[0], rows[1]}

    def test_edge_labels_carry_columns(self, bird_table):
        graph, rows = table_to_graph(bird_table)
        labels = {e.label for e in graph.out_edges(rows[0])}
        assert labels == {"has crown color", "has habitat"}

    def test_empty_values_skipped(self):
        table = RelationalTable(TableSchema("t", ("name", "x"), key="name"))
        table.insert(["a", ""])
        graph, _ = table_to_graph(table)
        assert graph.num_edges == 0


class TestJsonToGraph:
    def test_references_become_entity_edges(self):
        doc = JsonDocument([
            JsonObject("a", {"size": "big"}, references={"rel": "b"}),
            JsonObject("b", {}),
        ])
        graph, keys = json_to_graph(doc)
        edge_labels = {e.label for e in graph.out_edges(keys["a"])}
        assert "ref rel" in edge_labels
        assert "has size" in edge_labels
        targets = {e.target for e in graph.out_edges(keys["a"])}
        assert keys["b"] in targets

    def test_unknown_reference_raises(self):
        doc = JsonDocument([JsonObject("a", {}, references={"rel": "nope"})])
        with pytest.raises(KeyError):
            json_to_graph(doc)


class TestDataLake:
    def test_unified_graph_resolves_foreign_keys(self):
        birds = RelationalTable(TableSchema(
            "birds", ("name", "region"), key="name",
            foreign_keys=(ForeignKey("region", "regions"),)))
        birds.insert(["albatross", "coast"])
        regions = RelationalTable(TableSchema("regions", ("rid",), key="rid"))
        regions.insert(["coast"])
        lake = DataLake()
        lake.add_table(birds)
        lake.add_table(regions)
        unified = lake.unified_graph()
        ref_edges = [e for e in unified.edges() if e.label.startswith("ref")]
        assert len(ref_edges) == 1
        assert unified.vertex(ref_edges[0].target).kind == "entity"

    def test_all_source_types_combine(self, bird_table):
        lake = DataLake()
        lake.add_table(bird_table)
        lake.add_json(JsonDocument([JsonObject("doc-entity", {"a": 1})]))
        native = Graph()
        native.add_vertex("native-entity")
        lake.add_graph(native)
        unified = lake.unified_graph()
        labels = {v.label for v in unified.vertices()}
        assert {"laysan albatross", "doc-entity", "native-entity"} <= labels
        assert lake.num_sources == 3

    def test_merge_graphs_counts(self, bird_table):
        g1, _ = table_to_graph(bird_table)
        g2, _ = table_to_graph(bird_table)
        merged = merge_graphs([g1, g2])
        assert merged.num_vertices == g1.num_vertices * 2
        assert merged.num_edges == g1.num_edges * 2
