"""Shared fixtures: a tiny pre-trained bundle and benchmark datasets.

The bundle uses a deliberately small universe and short pre-training so
the whole suite runs in seconds; it is cached on disk by the zoo, so
repeated test runs skip pre-training entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clip.pretrain import PretrainConfig
from repro.clip.zoo import get_pretrained_bundle
from repro.datasets.generator import (build_attribute_dataset,
                                      build_relational_dataset)

TINY_CONFIG = PretrainConfig(epochs=20, batch_size=16, captions_per_concept=6,
                             seed=7)


@pytest.fixture(scope="session")
def tiny_bundle():
    """A small but genuinely pre-trained model bundle (16 bird concepts)."""
    return get_pretrained_bundle(kind="bird", num_concepts=16, seed=7,
                                 config=TINY_CONFIG)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_bundle):
    """Attribute-style benchmark over 10 of the bundle's concepts."""
    return build_attribute_dataset(tiny_bundle.universe, name="tiny-cub",
                                   concept_indices=range(10),
                                   images_per_concept=2, seed=7)


@pytest.fixture(scope="session")
def tiny_relational_dataset(tiny_bundle):
    """Relational (FB-style) benchmark over the same universe."""
    return build_relational_dataset(tiny_bundle.universe, name="tiny-fb",
                                    concept_indices=range(12),
                                    images_per_concept=2, seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
