"""Matcher invariants: properties any correct implementation must hold."""

import numpy as np
import pytest

from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.datalake.graph import Graph


class TestScoreInvariants:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        return matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                           tiny_dataset.entity_vertices)

    def test_row_order_follows_vertex_order(self, fitted, tiny_dataset):
        vertices = list(tiny_dataset.entity_vertices[:4])
        forward = fitted.score(vertices)
        backward = fitted.score(vertices[::-1])
        np.testing.assert_allclose(forward, backward[::-1], atol=1e-6)

    def test_subset_rows_match_full(self, fitted, tiny_dataset):
        full = fitted.score()
        subset = fitted.score(tiny_dataset.entity_vertices[2:5])
        np.testing.assert_allclose(subset, full[2:5], atol=1e-6)

    def test_evaluate_consistent_with_score(self, fitted, tiny_dataset):
        from repro.core.metrics import evaluate_ranking

        vertices = tiny_dataset.entity_vertices[:6]
        direct = fitted.evaluate(tiny_dataset, vertices)
        manual = evaluate_ranking(
            fitted.score(vertices),
            [tiny_dataset.images_of_vertex(v) for v in vertices])
        assert direct == manual


class TestPseudoLabelInvariants:
    def test_labels_point_at_existing_images(self, tiny_bundle,
                                             tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=1,
                                                     lr=1e-3, seed=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        for vertex, image in matcher._pseudo_labels.items():
            assert vertex in matcher.vertex_ids
            assert 0 <= image < len(tiny_dataset.images)

    def test_plus_labels_respect_partitions(self, tiny_bundle, tiny_dataset):
        """CrossEM+ only mines labels among partition-local candidates."""
        matcher = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=1,
                                                             lr=1e-3, seed=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        candidates = {}
        for partition in matcher.plan.partitions:
            for vertex in partition.vertex_ids:
                candidates.setdefault(vertex, set()).update(
                    partition.image_indices)
        for vertex, image in matcher._pseudo_labels.items():
            assert image in candidates[vertex], (vertex, image)


class TestAggregatorChoice:
    def test_sage_and_gnn_give_different_soft_prompts(self, tiny_bundle,
                                                      tiny_dataset):
        prompts = {}
        for aggregator in ("gnn", "sage"):
            matcher = CrossEM(tiny_bundle,
                              CrossEMConfig(prompt="soft", epochs=0,
                                            aggregator=aggregator, seed=0))
            matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                        tiny_dataset.entity_vertices)
            prompts[aggregator] = matcher.soft_prompts.prompt_table.data.copy()
        assert not np.allclose(prompts["gnn"], prompts["sage"])


class TestDegenerateGraphs:
    def test_isolated_entities_still_match(self, tiny_bundle, tiny_dataset):
        """Vertices with no neighbors fall back to label-only prompting."""
        graph = Graph()
        vertices = [graph.add_vertex(tiny_dataset.graph.label(v))
                    for v in tiny_dataset.entity_vertices[:4]]
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(graph, tiny_dataset.images, vertices)
        scores = matcher.score()
        assert scores.shape == (4, len(tiny_dataset.images))
        assert np.isfinite(scores).all()

    def test_soft_prompt_on_isolated_vertices(self, tiny_bundle,
                                              tiny_dataset):
        graph = Graph()
        vertices = [graph.add_vertex(tiny_dataset.graph.label(v))
                    for v in tiny_dataset.entity_vertices[:4]]
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=1,
                                                     lr=1e-3, seed=0))
        matcher.fit(graph, tiny_dataset.images, vertices)
        assert np.isfinite(matcher.score()).all()
