"""PCP mini-batch generation tests (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minibatch import (PCPConfig, generate_minibatches, kmeans,
                                  pairwise_proximity, property_closeness)


class TestKMeans:
    def test_labels_shape_and_range(self, rng):
        points = rng.random((20, 3))
        labels = kmeans(points, 4, rng=0)
        assert labels.shape == (20,)
        assert set(labels) <= set(range(4))

    def test_single_cluster(self, rng):
        labels = kmeans(rng.random((5, 2)), 1, rng=0)
        assert (labels == 0).all()

    def test_k_capped_at_n(self, rng):
        labels = kmeans(rng.random((3, 2)), 10, rng=0)
        assert len(set(labels)) <= 3

    def test_separable_clusters_found(self):
        a = np.zeros((10, 2)) + [0, 0]
        b = np.zeros((10, 2)) + [10, 10]
        labels = kmeans(np.vstack([a, b]), 2, rng=0)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_deterministic(self, rng):
        points = rng.random((15, 4))
        np.testing.assert_array_equal(kmeans(points, 3, rng=7),
                                      kmeans(points, 3, rng=7))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 5), st.integers(0, 1000))
    def test_property_every_point_labeled(self, n, k, seed):
        rng = np.random.default_rng(seed)
        labels = kmeans(rng.random((n, 2)), k, rng=seed)
        assert len(labels) == n
        assert labels.min() >= 0


class TestProximity:
    def test_shapes(self, tiny_bundle, tiny_dataset):
        properties, patches = property_closeness(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_dataset.images, tiny_bundle.minilm, tiny_bundle.aligner)
        assert set(properties) == set(tiny_dataset.entity_vertices)
        assert patches.shape[0] == len(tiny_dataset.images)
        proximity = pairwise_proximity(tiny_dataset.graph,
                                       tiny_dataset.entity_vertices,
                                       properties, patches)
        assert proximity.shape == (len(tiny_dataset.entity_vertices),
                                   len(tiny_dataset.images))

    def test_proximity_favors_gold_images(self, tiny_bundle, tiny_dataset):
        """On average, a vertex's gold images should score above the
        column mean — the signal PCP batching exploits."""
        properties, patches = property_closeness(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_dataset.images, tiny_bundle.minilm, tiny_bundle.aligner)
        proximity = pairwise_proximity(tiny_dataset.graph,
                                       tiny_dataset.entity_vertices,
                                       properties, patches)
        margins = []
        for row, vertex in enumerate(tiny_dataset.entity_vertices):
            gold = tiny_dataset.images_of_vertex(vertex)
            margins.append(proximity[row, gold].mean()
                           - proximity[row].mean())
        assert np.mean(margins) > 0


class TestGenerateMinibatches:
    @pytest.fixture(scope="class")
    def plan(self, tiny_bundle, tiny_dataset):
        return generate_minibatches(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_dataset.images, tiny_bundle.minilm, tiny_bundle.aligner,
            PCPConfig(num_vertex_subsets=2, num_image_clusters=3, seed=0))

    def test_partitions_nonempty(self, plan):
        assert plan.partitions
        for partition in plan.partitions:
            assert len(partition.vertex_ids) >= 1
            assert len(partition.image_indices) >= 2

    def test_every_vertex_appears(self, plan, tiny_dataset):
        covered = {v for p in plan.partitions for v in p.vertex_ids}
        assert covered == set(tiny_dataset.entity_vertices)

    def test_image_indices_valid(self, plan, tiny_dataset):
        for partition in plan.partitions:
            assert max(partition.image_indices) < len(tiny_dataset.images)
            assert min(partition.image_indices) >= 0

    def test_images_disjoint_within_vertex_subset(self, plan):
        """Clusters of the same vertex subset must not share images."""
        by_subset = {}
        for partition in plan.partitions:
            key = tuple(sorted(partition.vertex_ids))
            by_subset.setdefault(key, []).append(partition.image_indices)
        for clusters in by_subset.values():
            seen = set()
            for images in clusters:
                assert not (seen & set(images))
                seen.update(images)

    def test_total_pairs_below_cross_product(self, plan, tiny_dataset):
        assert plan.total_pairs < tiny_dataset.num_candidate_pairs

    def test_deterministic(self, tiny_bundle, tiny_dataset):
        config = PCPConfig(seed=5)
        a = generate_minibatches(tiny_dataset.graph,
                                 tiny_dataset.entity_vertices,
                                 tiny_dataset.images, tiny_bundle.minilm,
                                 tiny_bundle.aligner, config)
        b = generate_minibatches(tiny_dataset.graph,
                                 tiny_dataset.entity_vertices,
                                 tiny_dataset.images, tiny_bundle.minilm,
                                 tiny_bundle.aligner, config)
        assert [(p.vertex_ids, p.image_indices) for p in a.partitions] == \
            [(p.vertex_ids, p.image_indices) for p in b.partitions]

    def test_vertex_row_lookup(self, plan, tiny_dataset):
        vertex = tiny_dataset.entity_vertices[3]
        assert plan.vertex_ids[plan.vertex_row(vertex)] == vertex
