"""Property-based negative sampling tests (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.minibatch import MiniBatchPlan, Partition
from repro.core.negative import (NegativeSamplingConfig, augment_plan,
                                 sample_negatives)


@pytest.fixture()
def plan(rng):
    """A hand-built plan: 4 vertices, 10 images, seeded proximity."""
    proximity = rng.random((4, 10)).astype(np.float32)
    partitions = [Partition([100, 101], [0, 1, 2]),
                  Partition([102, 103], [3, 4])]
    return MiniBatchPlan(partitions, proximity, [100, 101, 102, 103])


class TestSampleNegatives:
    def test_excludes_partition_images(self, plan, rng):
        partition = plan.partitions[0]
        negatives = sample_negatives(plan, partition, 4, rng)
        assert not set(negatives) & set(partition.image_indices)

    def test_count_respected(self, plan, rng):
        negatives = sample_negatives(plan, plan.partitions[0], 3, rng)
        assert len(negatives) <= 3

    def test_no_duplicates(self, plan, rng):
        negatives = sample_negatives(plan, plan.partitions[0], 6, rng)
        assert len(negatives) == len(set(negatives))

    def test_prefers_high_proximity(self, plan):
        """With k=1 per vertex, the sampled negative should be the top
        out-of-partition image by proximity."""
        rng = np.random.default_rng(0)
        partition = plan.partitions[1]
        negatives = sample_negatives(plan, partition, 1, rng, max_top_k=1)
        row = plan.proximity[plan.vertex_row(partition.vertex_ids[0])]
        allowed = [i for i in np.argsort(-row)
                   if i not in partition.image_indices]
        assert negatives[0] == allowed[0]


class TestAugmentPlan:
    def test_pads_to_batch_multiple(self, plan):
        config = NegativeSamplingConfig(batch_size=4, seed=0)
        augmented = augment_plan(plan, config)
        for partition in augmented.partitions:
            assert partition.num_pairs % 4 == 0 or \
                partition.num_pairs >= Partition(
                    partition.vertex_ids, partition.image_indices).num_pairs

    def test_keeps_original_images(self, plan):
        augmented = augment_plan(plan, NegativeSamplingConfig(batch_size=4,
                                                              seed=0))
        originals = [set(p.image_indices) for p in plan.partitions]
        for partition in augmented.partitions:
            assert any(set(partition.image_indices) >= images
                       for images in originals)

    def test_deterministic(self, plan):
        config = NegativeSamplingConfig(batch_size=4, seed=3)
        a = augment_plan(plan, config)
        b = augment_plan(plan, config)
        assert [(p.vertex_ids, p.image_indices) for p in a.partitions] == \
            [(p.vertex_ids, p.image_indices) for p in b.partitions]

    def test_proximity_carried_over(self, plan):
        augmented = augment_plan(plan, NegativeSamplingConfig(seed=0))
        np.testing.assert_array_equal(augmented.proximity, plan.proximity)


class TestUnderFillRegression:
    def test_top_clustered_exclusions_do_not_underfill(self):
        """Regression: when the partition's own images occupy the top of
        every proximity ranking, the old fixed window
        ranked[:k + len(excluded)] saw almost nothing fresh and returned
        far fewer negatives than requested despite 7 spare images."""
        proximity = np.tile(
            np.linspace(1.0, 0.1, 10, dtype=np.float32), (2, 1))
        partition = Partition([100, 101], [0, 1, 2])  # the top-3 images
        plan = MiniBatchPlan([partition], proximity, [100, 101])
        rng = np.random.default_rng(0)
        negatives = sample_negatives(plan, partition, 6, rng, max_top_k=1)
        assert len(negatives) == 6
        assert not set(negatives) & {0, 1, 2}
        assert len(set(negatives)) == 6

    def test_fill_exhausts_cleanly_when_images_run_out(self):
        proximity = np.ones((2, 4), dtype=np.float32)
        partition = Partition([100, 101], [0, 1])
        plan = MiniBatchPlan([partition], proximity, [100, 101])
        negatives = sample_negatives(plan, partition, 10,
                                     np.random.default_rng(0))
        assert sorted(negatives) == [2, 3]  # everything available, once

    def test_augmented_partitions_reach_pad_target(self):
        """Alg. 3's contract: every partition is padded up to (at least)
        the next batch-size multiple whenever enough images exist."""
        rng = np.random.default_rng(1)
        proximity = rng.random((4, 40)).astype(np.float32)
        # partition images deliberately placed at the top of the ranking
        top = list(np.argsort(-proximity[0])[:5])
        partitions = [Partition([100, 101], top),
                      Partition([102, 103], [0, 1])]
        plan = MiniBatchPlan(partitions, proximity, [100, 101, 102, 103])
        config = NegativeSamplingConfig(batch_size=16, max_top_k=2, seed=0)
        augmented = augment_plan(plan, config)
        for before, after in zip(plan.partitions, sorted(
                augmented.partitions,
                key=lambda p: p.vertex_ids)):
            target = int(np.ceil(before.num_pairs / 16)) * 16
            assert after.num_pairs >= target
