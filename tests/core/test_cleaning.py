"""Data-cleaning extension tests (future-work module)."""

import numpy as np
import pytest

from repro.core.cleaning import (affinity_outliers, clean_repository,
                                 provenance_conflicts)
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.vision.image import SyntheticImage


@pytest.fixture(scope="module")
def fitted_with_noise(tiny_bundle, tiny_dataset):
    """A matcher fitted on the tiny dataset plus injected corrupted
    (near-black) images that match nothing."""
    rng = np.random.default_rng(0)
    images = list(tiny_dataset.images)
    noise_positions = []
    for k in range(3):
        pixels = (rng.random((24, 24, 3)) * 0.05).astype(np.float32)
        images.append(SyntheticImage(pixels, concept_index=-1,
                                     image_id=1000 + k))
        noise_positions.append(len(images) - 1)
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(tiny_dataset.graph, images, tiny_dataset.entity_vertices)
    return matcher, noise_positions


class TestAffinityOutliers:
    def test_injected_noise_flagged(self, fitted_with_noise):
        matcher, noise_positions = fitted_with_noise
        flags = affinity_outliers(matcher, z_threshold=1.5)
        flagged = {f.image_position for f in flags}
        assert set(noise_positions) & flagged

    def test_flags_sorted_worst_first(self, fitted_with_noise):
        matcher, _ = fitted_with_noise
        flags = affinity_outliers(matcher, z_threshold=1.0)
        scores = [f.score for f in flags]
        assert scores == sorted(scores)

    def test_threshold_must_be_positive(self, fitted_with_noise):
        matcher, _ = fitted_with_noise
        with pytest.raises(ValueError):
            affinity_outliers(matcher, z_threshold=0)


class TestProvenanceConflicts:
    def test_swapped_claim_detected(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        scores = matcher.score()
        # find an image the matcher gets right with some margin, then
        # claim it belongs to a different vertex
        best_rows = scores.argmax(axis=0)
        for position in range(len(tiny_dataset.images)):
            true_vertex = matcher.vertex_ids[int(best_rows[position])]
            wrong = next(v for v in matcher.vertex_ids if v != true_vertex)
            flags = provenance_conflicts(matcher, {position: wrong},
                                         margin=0.0)
            if flags:
                assert flags[0].best_vertex == true_vertex
                return
        pytest.fail("no conflict detected for any image")

    def test_correct_claim_not_flagged(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        scores = matcher.score()
        position = 0
        best_vertex = matcher.vertex_ids[int(scores[:, position].argmax())]
        flags = provenance_conflicts(matcher, {position: best_vertex})
        assert flags == []

    def test_unknown_vertex_raises(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        with pytest.raises(KeyError):
            provenance_conflicts(matcher, {0: 999_999})


class TestCleanRepository:
    def test_combines_and_deduplicates(self, fitted_with_noise):
        matcher, _ = fitted_with_noise
        claims = {0: matcher.vertex_ids[0]}
        flags = clean_repository(matcher, claims, z_threshold=1.0)
        positions = [f.image_position for f in flags]
        assert len(positions) == len(set(positions))
