"""Matcher persistence tests: save/load round trips."""

import numpy as np
import pytest

from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.core.persistence import load_matcher, save_matcher


class TestSaveLoad:
    def test_unfitted_matcher_cannot_save(self, tiny_bundle, tmp_path):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(epochs=0))
        with pytest.raises(RuntimeError):
            save_matcher(matcher, tmp_path / "m.npz")

    def test_soft_roundtrip_scores_identical(self, tiny_bundle, tiny_dataset,
                                             tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=2,
                                                     lr=1e-3, seed=3))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        expected = trained.score()
        path = tmp_path / "matcher.npz"
        save_matcher(trained, path)

        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=2,
                                                   lr=1e-3, seed=3))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), expected, atol=1e-5)

    def test_plus_roundtrip(self, tiny_bundle, tiny_dataset, tmp_path):
        trained = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=1,
                                                             lr=1e-3, seed=2))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "plus.npz"
        save_matcher(trained, path)
        fresh = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=1,
                                                           lr=1e-3, seed=2))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), trained.score(), atol=1e-5)

    def test_prompt_kind_mismatch_rejected(self, tiny_bundle, tiny_dataset,
                                           tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "hard.npz"
        save_matcher(trained, path)
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0))
        with pytest.raises(ValueError):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_hard_roundtrip(self, tiny_bundle, tiny_dataset, tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "hard.npz"
        save_matcher(trained, path)
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), trained.score(), atol=1e-5)
