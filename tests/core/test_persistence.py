"""Matcher persistence tests: save/load round trips."""

import numpy as np
import pytest

from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.core.persistence import load_matcher, save_matcher


class TestSaveLoad:
    def test_unfitted_matcher_cannot_save(self, tiny_bundle, tmp_path):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(epochs=0))
        with pytest.raises(RuntimeError):
            save_matcher(matcher, tmp_path / "m.npz")

    def test_soft_roundtrip_scores_identical(self, tiny_bundle, tiny_dataset,
                                             tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=2,
                                                     lr=1e-3, seed=3))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        expected = trained.score()
        path = tmp_path / "matcher.npz"
        save_matcher(trained, path)

        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=2,
                                                   lr=1e-3, seed=3))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), expected, atol=1e-5)

    def test_plus_roundtrip(self, tiny_bundle, tiny_dataset, tmp_path):
        trained = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=1,
                                                             lr=1e-3, seed=2))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "plus.npz"
        save_matcher(trained, path)
        fresh = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=1,
                                                           lr=1e-3, seed=2))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), trained.score(), atol=1e-5)

    def test_prompt_kind_mismatch_rejected(self, tiny_bundle, tiny_dataset,
                                           tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "hard.npz"
        save_matcher(trained, path)
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0))
        with pytest.raises(ValueError):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_hard_roundtrip(self, tiny_bundle, tiny_dataset, tmp_path):
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = tmp_path / "hard.npz"
        save_matcher(trained, path)
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), trained.score(), atol=1e-5)


class TestSaveLoadHardening:
    def test_missing_suffix_normalized_and_returned(self, tiny_bundle,
                                                    tiny_dataset, tmp_path):
        """save_matcher(path) without .npz used to write path + '.npz'
        silently (np.savez behaviour) while load_matcher(path) looked
        for the bare name; now the real path is normalized + returned."""
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        returned = save_matcher(trained, tmp_path / "matcher")
        assert returned.suffix == ".npz" and returned.exists()
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        load_matcher(returned, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        np.testing.assert_allclose(fresh.score(), trained.score(), atol=1e-5)

    def test_missing_soft_keys_fail_loudly(self, tiny_bundle, tiny_dataset,
                                           tmp_path):
        """An archive lacking tuned soft-prompt state must error, not
        silently serve freshly-initialized weights."""
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0,
                                                     seed=3))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = save_matcher(trained, tmp_path / "m.npz")
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        dropped = {k: v for k, v in arrays.items()
                   if k != "soft.prompt_table"}
        np.savez_compressed(path, **dropped)
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0,
                                                   seed=3))
        with pytest.raises(KeyError, match="prompt_table"):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_prompt_mismatch_checked_before_rebuild(self, tiny_bundle,
                                                    tiny_dataset, tmp_path,
                                                    monkeypatch):
        """Meta validation must run *before* the expensive epochs=0 fit
        (it used to run after, wasting the whole rebuild)."""
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = save_matcher(trained, tmp_path / "hard.npz")
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0))

        def fit_must_not_run(*args, **kwargs):
            raise AssertionError("fit ran before meta validation")

        monkeypatch.setattr(CrossEM, "fit", fit_must_not_run)
        with pytest.raises(ValueError, match="prompt"):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_kind_mismatch_rejected(self, tiny_bundle, tiny_dataset,
                                    tmp_path):
        trained = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=0,
                                                             seed=2))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = save_matcher(trained, tmp_path / "plus.npz")
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=0,
                                                   seed=2))
        with pytest.raises(ValueError, match="kind|plus"):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_archive_handle_closed_after_load(self, tiny_bundle,
                                              tiny_dataset, tmp_path):
        """load_matcher must not leak the NpzFile handle: overwriting
        the archive right after loading (locked on some platforms while
        open) and re-loading must work."""
        trained = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        trained.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        path = save_matcher(trained, tmp_path / "m.npz")
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        load_matcher(path, tiny_bundle, tiny_dataset.graph,
                     tiny_dataset.images, fresh)
        returned = save_matcher(trained, path)  # would fail on a leak (win)
        assert returned == path
