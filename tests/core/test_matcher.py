"""CrossEM matcher tests (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.matcher import CrossEM, CrossEMConfig


class TestConfig:
    def test_unknown_prompt_rejected(self):
        with pytest.raises(ValueError):
            CrossEMConfig(prompt="fancy")

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValueError):
            CrossEMConfig(aggregator="mean")


class TestFit:
    def test_requires_minimum_data(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(epochs=0))
        with pytest.raises(ValueError):
            matcher.fit(tiny_dataset.graph, tiny_dataset.images[:1],
                        tiny_dataset.entity_vertices[:1])

    def test_inference_before_fit_raises(self, tiny_bundle):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(epochs=0))
        with pytest.raises(RuntimeError):
            matcher.score()

    def test_hard_prompt_does_not_train(self, tiny_bundle, tiny_dataset):
        """Hard prompts are discrete: no parameters, no epochs — the
        paper's '-' training-time entries."""
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=5))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        assert matcher.epoch_losses == []
        assert matcher.efficiency.seconds_per_epoch == 0.0

    def test_soft_prompt_trains(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=2,
                                                     seed=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        assert len(matcher.epoch_losses) == 2
        assert matcher.efficiency.seconds_per_epoch > 0
        assert matcher.efficiency.peak_memory_bytes > 0

    def test_uses_entity_ids_by_default(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="baseline",
                                                     epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images)
        assert set(matcher.vertex_ids) == set(
            tiny_dataset.graph.entity_ids())

    def test_does_not_mutate_bundle_clip(self, tiny_bundle, tiny_dataset):
        before = {k: v.copy()
                  for k, v in tiny_bundle.clip.state_dict().items()}
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=1,
                                                     seed=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        after = tiny_bundle.clip.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestInference:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        return matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                           tiny_dataset.entity_vertices)

    def test_score_shape(self, fitted, tiny_dataset):
        scores = fitted.score()
        assert scores.shape == (len(tiny_dataset.entity_vertices),
                                len(tiny_dataset.images))

    def test_score_subset(self, fitted, tiny_dataset):
        scores = fitted.score(tiny_dataset.entity_vertices[:3])
        assert scores.shape[0] == 3

    def test_evaluate_beats_random(self, fitted, tiny_dataset):
        """The pre-trained model must rank far above chance."""
        result = fitted.evaluate(tiny_dataset)
        images_per_concept = 2
        chance_h1 = 100.0 * images_per_concept / len(tiny_dataset.images)
        assert result.hits1 > 2 * chance_h1

    def test_match_pairs_top_k(self, fitted, tiny_dataset):
        pairs = fitted.match_pairs(top_k=2)
        assert len(pairs) == 2 * len(tiny_dataset.entity_vertices)
        vertex_ids = {v for v, _ in pairs}
        assert vertex_ids == set(tiny_dataset.entity_vertices)

    def test_reproducible_scores(self, tiny_bundle, tiny_dataset):
        results = []
        for _ in range(2):
            matcher = CrossEM(tiny_bundle,
                              CrossEMConfig(prompt="soft", epochs=1, seed=9))
            matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                        tiny_dataset.entity_vertices)
            results.append(matcher.score())
        np.testing.assert_allclose(results[0], results[1], atol=1e-5)
