"""Hard-prompt truncation behaviour — the §III-B drawback.

"M_T is initially trained on input tokens with a maximum length of 77,
which means that some token-level features in f_pro^h will be
truncated, thereby potentially losing important structural
information."  These tests pin that behaviour down: a dense
neighborhood serializes past the limit, the encoder truncates, and
information provably drops out — while the soft prompt module never
grows with the neighborhood.
"""

import numpy as np
import pytest

from repro.core.prompts import HardPromptGenerator, SoftPromptModule
from repro.datalake.graph import Graph
from repro.text.tokenizer import CLIP_MAX_TOKENS


from repro.datasets.world import COLOR_NAMES, PART_NAMES


@pytest.fixture()
def dense_graph():
    """An entity with 60 attribute neighbors — far past 77 tokens.

    Labels are real vocabulary words so encodings are sensitive to them.
    """
    graph = Graph()
    root = graph.add_vertex("megabird")
    for i in range(60):
        attr = graph.add_vertex(COLOR_NAMES[i % len(COLOR_NAMES)],
                                kind="attribute")
        graph.add_edge(root, attr,
                       f"has {PART_NAMES[i % len(PART_NAMES)]} color")
    return graph, root


class TestTruncation:
    def test_prompt_exceeds_token_limit(self, dense_graph, tiny_bundle):
        graph, root = dense_graph
        prompt = HardPromptGenerator(graph, d=1).generate(root)
        tokens = tiny_bundle.tokenizer.tokenize(prompt)
        assert len(tokens) > CLIP_MAX_TOKENS

    def test_encoder_truncates_to_limit(self, dense_graph, tiny_bundle):
        graph, root = dense_graph
        prompt = HardPromptGenerator(graph, d=1).generate(root)
        ids = tiny_bundle.tokenizer.encode(prompt)
        assert len(ids) == CLIP_MAX_TOKENS

    def test_truncation_loses_tail_information(self, dense_graph,
                                               tiny_bundle):
        """Changing a neighbor past the truncation horizon must not
        change the encoding — the 'lost structural information'."""
        graph, root = dense_graph
        tokenizer = tiny_bundle.tokenizer
        prompt = HardPromptGenerator(graph, d=1).generate(root)
        # mutate the textual tail far beyond 77 tokens
        mutated = prompt + " and has extra color in ultraviolet"
        a = tokenizer.encode(prompt)
        b = tokenizer.encode(mutated)
        np.testing.assert_array_equal(a, b)

    def test_early_neighbors_do_change_encoding(self, dense_graph,
                                                tiny_bundle):
        graph, root = dense_graph
        tokenizer = tiny_bundle.tokenizer
        prompt = HardPromptGenerator(graph, d=1).generate(root)
        first_color = COLOR_NAMES[0]
        replacement = COLOR_NAMES[1] if first_color in prompt else COLOR_NAMES[0]
        mutated = prompt.replace(first_color, replacement, 1)
        assert not np.array_equal(tokenizer.encode(prompt),
                                  tokenizer.encode(mutated))


class TestSoftPromptScalesConstant:
    def test_prompt_vector_size_independent_of_degree(self, dense_graph,
                                                      tiny_bundle):
        graph, root = dense_graph
        module = SoftPromptModule(graph, [root], tiny_bundle.clip.clone(),
                                  tiny_bundle.tokenizer, tiny_bundle.minilm,
                                  rng=0)
        assert module.prompt_table.shape == (1, tiny_bundle.minilm.dim)
        out = module([root])
        assert out.shape == (1, tiny_bundle.clip.embed_dim)
