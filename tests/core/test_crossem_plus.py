"""CrossEM+ tests (§IV optimizations and ablation switches)."""

import numpy as np
import pytest

from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.minibatch import PCPConfig


def make_plus(bundle, dataset, **overrides):
    config = CrossEMPlusConfig(epochs=overrides.pop("epochs", 1), lr=1e-3,
                               seed=0, **overrides)
    matcher = CrossEMPlus(bundle, config)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    return matcher


class TestPlan:
    def test_mbg_plan_built_lazily_once(self, tiny_bundle, tiny_dataset):
        matcher = make_plus(tiny_bundle, tiny_dataset)
        assert matcher.plan is not None
        plan = matcher.plan
        matcher._ensure_plan()
        assert matcher.plan is plan

    def test_trained_pairs_below_cross_product(self, tiny_bundle,
                                               tiny_dataset):
        # Without NS padding, PCP pruning strictly reduces the visited
        # pairs (NS padding can mask the saving at toy scale).
        matcher = make_plus(tiny_bundle, tiny_dataset, use_ns=False)
        assert 0 < matcher.trained_pairs < tiny_dataset.num_candidate_pairs

    def test_without_mbg_uses_random_partitions(self, tiny_bundle,
                                                tiny_dataset):
        with_mbg = make_plus(tiny_bundle, tiny_dataset)
        without = make_plus(tiny_bundle, tiny_dataset, use_mbg=False)
        a = [(tuple(p.vertex_ids), tuple(p.image_indices))
             for p in with_mbg.plan.partitions]
        b = [(tuple(p.vertex_ids), tuple(p.image_indices))
             for p in without.plan.partitions]
        assert a != b

    def test_without_ns_no_padding(self, tiny_bundle, tiny_dataset):
        without = make_plus(tiny_bundle, tiny_dataset, use_ns=False,
                            epochs=0)
        without._ensure_plan()
        # with NS off and MBG on, partitions are PCP's raw clusters
        assert without.plan is not None

    def test_trained_pairs_zero_before_plan(self, tiny_bundle):
        matcher = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(epochs=0))
        assert matcher.trained_pairs == 0


class TestTraining:
    def test_full_configuration_trains(self, tiny_bundle, tiny_dataset):
        matcher = make_plus(tiny_bundle, tiny_dataset, epochs=2)
        assert len(matcher.epoch_losses) == 2
        assert all(np.isfinite(l) for l in matcher.epoch_losses)

    def test_opc_changes_loss(self, tiny_bundle, tiny_dataset):
        with_opc = make_plus(tiny_bundle, tiny_dataset, use_opc=True)
        without = make_plus(tiny_bundle, tiny_dataset, use_opc=False)
        assert with_opc.epoch_losses != without.epoch_losses

    def test_proximity_label_weight_zero_matches_clip_labels(
            self, tiny_bundle, tiny_dataset):
        matcher = make_plus(tiny_bundle, tiny_dataset,
                            proximity_label_weight=0.0, epochs=1)
        assert matcher._pseudo_labels  # self-labeling still happens

    def test_accuracy_at_least_chance(self, tiny_bundle, tiny_dataset):
        matcher = make_plus(tiny_bundle, tiny_dataset, epochs=2)
        result = matcher.evaluate(tiny_dataset)
        chance = 100.0 * 2 / len(tiny_dataset.images)
        assert result.hits1 > chance

    def test_custom_pcp_config_respected(self, tiny_bundle, tiny_dataset):
        pcp = PCPConfig(num_vertex_subsets=1, num_image_clusters=2, seed=0)
        matcher = make_plus(tiny_bundle, tiny_dataset, pcp=pcp, use_ns=False)
        subsets = {tuple(sorted(p.vertex_ids))
                   for p in matcher.plan.partitions}
        assert len(subsets) == 1
