"""Loss function tests (Eqs. 2-4, 9, 10)."""

import numpy as np
import pytest

from repro import nn
from repro.core.losses import (batch_contrastive_loss, combined_loss,
                               matching_probability, orthogonal_constraint)


def unit_rows(array):
    return nn.functional.l2_normalize(nn.Tensor(np.asarray(array,
                                                           dtype=np.float32)))


class TestMatchingProbability:
    def test_rows_sum_to_one(self, rng):
        text = unit_rows(rng.standard_normal((3, 8)))
        images = unit_rows(rng.standard_normal((5, 8)))
        probs = matching_probability(text, images, 0.1).numpy()
        assert probs.shape == (3, 5)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3), atol=1e-5)

    def test_temperature_sharpens(self, rng):
        text = unit_rows(rng.standard_normal((2, 8)))
        images = unit_rows(rng.standard_normal((4, 8)))
        sharp = matching_probability(text, images, 0.05).numpy()
        smooth = matching_probability(text, images, 1.0).numpy()
        assert sharp.max() > smooth.max()

    def test_temperature_bounds(self, rng):
        text = unit_rows(rng.standard_normal((2, 4)))
        with pytest.raises(ValueError):
            matching_probability(text, text, 0.0)
        with pytest.raises(ValueError):
            matching_probability(text, text, 1.5)


class TestContrastiveLoss:
    def test_given_positives_aligned_is_lower(self):
        eye = unit_rows(np.eye(4, 8))
        positives = np.arange(4)
        aligned = batch_contrastive_loss(eye, eye, 0.1, positives).item()
        rng = np.random.default_rng(1)
        noisy = unit_rows(rng.standard_normal((4, 8)))
        mismatched = batch_contrastive_loss(noisy, eye, 0.1, positives).item()
        assert aligned < mismatched

    def test_self_labeling_mutual_pairs(self):
        # rows/cols perfectly aligned -> all pairs mutual -> finite loss
        eye = unit_rows(np.eye(3, 6))
        loss = batch_contrastive_loss(eye, eye, 0.1)
        assert loss is not None
        assert np.isfinite(loss.item())

    def test_no_mutual_pairs_returns_none(self):
        # text rows all prefer image 0, image 0 prefers row 0: only one
        # mutual pair exists, so the loss is not None; build a case with
        # *zero* mutual pairs via asymmetric preferences.
        text = unit_rows([[1.0, 0.0], [1.0, 0.05]])
        image = unit_rows([[0.0, 1.0], [0.05, 1.0]])
        loss = batch_contrastive_loss(text, image, 0.1)
        # mutual top-1 always yields at least one pair on square inputs
        # with a strict global maximum, so just assert the contract type
        assert loss is None or np.isfinite(loss.item())

    def test_symmetric_in_both_directions(self):
        eye = unit_rows(np.eye(2, 4))
        loss = batch_contrastive_loss(eye, eye, 0.5, np.arange(2)).item()
        # symmetric construction: both direction terms equal
        logits = (eye.numpy() @ eye.numpy().T) / 0.5
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        manual = -np.log(np.diag(probs)).mean()
        assert loss == pytest.approx(manual, abs=1e-4)


class TestOrthogonalConstraint:
    def test_orthogonal_rows_zero(self):
        prompts = nn.Tensor(np.eye(3, 5, dtype=np.float32))
        assert orthogonal_constraint(prompts).item() == pytest.approx(
            0.0, abs=1e-5)

    def test_identical_rows_penalized(self):
        prompts = nn.Tensor(np.ones((3, 5), dtype=np.float32))
        assert orthogonal_constraint(prompts).item() > 0.1

    def test_gradient_flows(self, rng):
        prompts = nn.Tensor(rng.standard_normal((4, 6)).astype(np.float32),
                            requires_grad=True)
        orthogonal_constraint(prompts).backward()
        assert prompts.grad is not None


class TestCombinedLoss:
    def test_convex_combination(self):
        a = nn.Tensor(np.asarray(2.0, dtype=np.float32))
        b = nn.Tensor(np.asarray(4.0, dtype=np.float32))
        assert combined_loss(a, b, beta=0.75).item() == pytest.approx(2.5)

    def test_beta_bounds(self):
        a = nn.Tensor(np.asarray(1.0, dtype=np.float32))
        with pytest.raises(ValueError):
            combined_loss(a, a, beta=1.5)
