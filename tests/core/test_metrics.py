"""Metric tests: Hits@k, MRR, efficiency report."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (EfficiencyReport, RankingResult,
                                evaluate_ranking, hits_at_k,
                                mean_reciprocal_rank)


@pytest.fixture()
def scores():
    # row 0: gold col 0 ranked 1st; row 1: gold col 2 ranked 2nd
    return np.asarray([[0.9, 0.1, 0.0],
                       [0.1, 0.9, 0.5]], dtype=np.float32)


class TestHitsAtK:
    def test_hand_computed(self, scores):
        gold = [[0], [2]]
        assert hits_at_k(scores, gold, 1) == pytest.approx(50.0)
        assert hits_at_k(scores, gold, 2) == pytest.approx(100.0)

    def test_multiple_gold_uses_best(self, scores):
        gold = [[0, 2], [0, 1]]
        assert hits_at_k(scores, gold, 1) == pytest.approx(100.0)

    def test_empty_gold_raises(self, scores):
        with pytest.raises(ValueError):
            hits_at_k(scores, [[0], []], 1)

    def test_misaligned_raises(self, scores):
        with pytest.raises(ValueError):
            hits_at_k(scores, [[0]], 1)


class TestMRR:
    def test_hand_computed(self, scores):
        gold = [[0], [2]]
        assert mean_reciprocal_rank(scores, gold) == pytest.approx(
            (1.0 + 0.5) / 2)

    def test_bounds(self, scores):
        value = mean_reciprocal_rank(scores, [[2], [0]])
        assert 0.0 < value <= 1.0


class TestEvaluateRanking:
    def test_bundle_consistency(self, scores):
        gold = [[0], [2]]
        result = evaluate_ranking(scores, gold)
        assert result.hits1 == hits_at_k(scores, gold, 1)
        assert result.hits3 == hits_at_k(scores, gold, 3)
        assert result.mrr == pytest.approx(mean_reciprocal_rank(scores, gold))
        assert "H@1" in result.as_dict()
        assert "H@1" in str(result)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.integers(2, 10), st.integers(0, 10_000))
def test_property_hits_monotone_in_k(rows, cols, seed):
    rng = np.random.default_rng(seed)
    scores = rng.random((rows, cols))
    gold = [[int(rng.integers(cols))] for _ in range(rows)]
    values = [hits_at_k(scores, gold, k) for k in range(1, cols + 1)]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(100.0)


class TestEfficiencyReport:
    def test_conversions_and_str(self):
        report = EfficiencyReport(seconds_per_epoch=1.5,
                                  peak_memory_bytes=2 * 1024**3)
        assert report.peak_memory_gb == pytest.approx(2.0)
        assert "T=1.50s" in str(report)
