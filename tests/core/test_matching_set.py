"""Matching-set metrics and threshold matching tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.core.metrics import MatchingSetResult, matching_set_metrics


class TestMatchingSetMetrics:
    def test_perfect(self):
        gold = {(1, 10), (2, 20)}
        result = matching_set_metrics(gold, gold)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_hand_computed(self):
        predicted = {(1, 10), (2, 99)}
        gold = {(1, 10), (2, 20), (3, 30)}
        result = matching_set_metrics(predicted, gold)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(1 / 3)
        assert result.f1 == pytest.approx(2 * 0.5 * (1 / 3) / (0.5 + 1 / 3))

    def test_empty_prediction_convention(self):
        result = matching_set_metrics(set(), {(1, 1)})
        assert result.precision == 1.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_empty_gold_rejected(self):
        with pytest.raises(ValueError):
            matching_set_metrics({(1, 1)}, set())

    def test_str(self):
        assert "F1=" in str(MatchingSetResult(0.5, 0.5))

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                   min_size=1, max_size=10),
           st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                   min_size=1, max_size=10))
    def test_property_bounds_and_symmetry(self, predicted, gold):
        result = matching_set_metrics(predicted, gold)
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert 0.0 <= result.f1 <= 1.0
        # swapping roles swaps precision and recall
        swapped = matching_set_metrics(gold, predicted)
        assert result.precision == pytest.approx(swapped.recall)
        assert result.recall == pytest.approx(swapped.precision)


class TestThresholdMatching:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        return matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                           tiny_dataset.entity_vertices)

    def test_low_threshold_recall_one(self, fitted, tiny_dataset):
        pairs = fitted.match_pairs(threshold=-1.0)
        result = matching_set_metrics(pairs, tiny_dataset.true_pairs())
        assert result.recall == 1.0

    def test_threshold_trades_precision_for_recall(self, fitted,
                                                   tiny_dataset):
        gold = tiny_dataset.true_pairs()
        loose = matching_set_metrics(fitted.match_pairs(threshold=0.3), gold)
        tight = matching_set_metrics(fitted.match_pairs(threshold=0.7), gold)
        assert tight.precision >= loose.precision
        assert tight.recall <= loose.recall

    def test_top_k_still_default(self, fitted, tiny_dataset):
        pairs = fitted.match_pairs(top_k=1)
        assert len(pairs) == len(tiny_dataset.entity_vertices)
