"""Golden-equivalence tests for the fused encoder pipeline.

Every vectorized hot path must reproduce its retained naive reference
*exactly* (``atol=0``): the optimizations are pure reorderings and
caches, so any drift is a bug, not noise.
"""

import numpy as np
import pytest

from repro.core.minibatch import (kmeans, kmeans_reference,
                                  pairwise_proximity,
                                  pairwise_proximity_reference,
                                  property_closeness)


@pytest.fixture(scope="module")
def closeness(tiny_bundle, tiny_dataset):
    return property_closeness(tiny_dataset.graph,
                              tiny_dataset.entity_vertices,
                              tiny_dataset.images, tiny_bundle.minilm,
                              tiny_bundle.aligner)


class TestPairwiseProximity:
    def test_matches_reference_exactly(self, tiny_dataset, closeness):
        properties, patches = closeness
        vectorized = pairwise_proximity(tiny_dataset.graph,
                                        tiny_dataset.entity_vertices,
                                        properties, patches)
        reference = pairwise_proximity_reference(tiny_dataset.graph,
                                                 tiny_dataset.entity_vertices,
                                                 properties, patches)
        np.testing.assert_array_equal(vectorized, reference)

    def test_matches_reference_on_ragged_random_properties(self, rng):
        """Property counts vary per vertex; the ragged reduction must
        slice the stacked GEMM at exactly the right rows."""
        num_images, patches_per_image, dim = 7, 4, 16
        patch_features = rng.standard_normal(
            (num_images, patches_per_image, dim)).astype(np.float32)
        vertex_ids = list(range(9))
        properties = {vid: rng.standard_normal(
            (int(rng.integers(1, 6)), dim)).astype(np.float32)
            for vid in vertex_ids}
        vectorized = pairwise_proximity(None, vertex_ids, properties,
                                        patch_features)
        reference = pairwise_proximity_reference(None, vertex_ids, properties,
                                                 patch_features)
        np.testing.assert_array_equal(vectorized, reference)

    def test_empty_vertex_list(self, rng):
        patch_features = rng.random((3, 4, 8)).astype(np.float32)
        out = pairwise_proximity(None, [], {}, patch_features)
        assert out.shape == (0, 3)


class TestKMeans:
    @pytest.mark.parametrize("seed", range(20))
    def test_labels_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 80))
        d = int(rng.integers(2, 24))
        k = int(rng.integers(2, 6))
        points = rng.random((n, d)).astype(np.float32)
        points /= points.sum(axis=1, keepdims=True)  # PCP-style rows
        np.testing.assert_array_equal(kmeans(points, k, rng=seed),
                                      kmeans_reference(points, k, rng=seed))

    def test_labels_match_reference_separated_blobs(self):
        rng = np.random.default_rng(3)
        blobs = np.concatenate([rng.normal(loc, 0.1, size=(12, 5))
                                for loc in (0.0, 3.0, -4.0)]).astype(np.float32)
        np.testing.assert_array_equal(kmeans(blobs, 3, rng=1),
                                      kmeans_reference(blobs, 3, rng=1))


class TestPropertyCloseness:
    def test_matches_per_item_reference(self, tiny_bundle, tiny_dataset,
                                        closeness):
        """The batched embed/patch pipeline must equal the per-vertex /
        per-image composition it replaced."""
        from repro.core.minibatch import _property_texts
        properties, patches = closeness
        minilm, aligner = tiny_bundle.minilm, tiny_bundle.aligner
        for vid in tiny_dataset.entity_vertices:
            matrix = minilm.embed_texts_reference(
                _property_texts(tiny_dataset.graph, vid, 1))
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            expected = (matrix / np.maximum(norms, 1e-8)).astype(np.float32)
            np.testing.assert_array_equal(properties[vid], expected)
        reference = np.stack([aligner.patch_text_space(img.pixels)
                              for img in tiny_dataset.images])
        norms = np.linalg.norm(reference, axis=-1, keepdims=True)
        reference = (reference / np.maximum(norms, 1e-8)).astype(np.float32)
        np.testing.assert_array_equal(patches, reference)
