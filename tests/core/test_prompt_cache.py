"""Discrete-prompt embedding cache behaviour (the fused encoder
pipeline's matcher-side half): cache hits are observable through the
metrics registry, invalidation happens on fit, and the cached scores
agree with the uncached reference encode path."""

import warnings

import numpy as np
import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import registry


@pytest.fixture(scope="module")
def fitted(tiny_bundle, tiny_dataset):
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
    return matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                       tiny_dataset.entity_vertices)


class TestPromptCache:
    def test_repeated_encode_hits_cache(self, fitted, tiny_dataset):
        vertices = tiny_dataset.entity_vertices[:4]
        fitted.encode_vertices(vertices)  # first call may build
        hits = registry().counter("matcher.prompt_cache.hit").value
        builds = registry().counter("matcher.prompt_cache.build").value
        for _ in range(3):
            fitted.encode_vertices(vertices)
        assert registry().counter("matcher.prompt_cache.hit").value == hits + 3
        assert registry().counter("matcher.prompt_cache.build").value == builds

    def test_cached_matches_reference_encode(self, fitted, tiny_dataset):
        vertices = tiny_dataset.entity_vertices[:6]
        cached = fitted.encode_vertices(vertices).numpy()
        reference = fitted.encode_vertices_reference(vertices).numpy()
        np.testing.assert_allclose(cached, reference, atol=1e-6)

    def test_fit_invalidates_cache(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="baseline",
                                                     epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        matcher.score()
        assert matcher._text_embeds is not None
        assert matcher._image_embeds is not None
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        assert matcher._text_embeds is None
        assert matcher._image_embeds is None

    def test_soft_prompt_never_uses_text_cache(self, tiny_bundle,
                                               tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=1,
                                                     seed=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        matcher.score()
        assert matcher._text_embeds is None


class TestScoreRename:
    def test_vertex_batch_is_the_parameter(self, fitted):
        scores = fitted.score(vertex_batch=8)
        assert scores.shape[0] == len(fitted.vertex_ids)

    def test_image_batch_still_works_but_warns(self, fitted):
        with pytest.warns(DeprecationWarning):
            legacy = fitted.score(image_batch=8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            current = fitted.score(vertex_batch=8)
        np.testing.assert_array_equal(legacy, current)


class TestMatchPairsTopK:
    def test_argpartition_matches_argsort_selection(self, fitted,
                                                    tiny_dataset):
        scores = fitted.score()
        pairs = fitted.match_pairs(top_k=3)
        expected = set()
        for row, vertex in enumerate(fitted.vertex_ids):
            for column in np.argsort(-scores[row])[:3]:
                expected.add((vertex, fitted.images[int(column)].image_id))
        assert pairs == expected

    def test_top_k_larger_than_repository(self, fitted, tiny_dataset):
        pairs = fitted.match_pairs(top_k=len(tiny_dataset.images) + 5)
        assert len(pairs) == len(fitted.vertex_ids) * len(tiny_dataset.images)

    def test_top_k_zero(self, fitted):
        assert fitted.match_pairs(top_k=0) == set()
