"""Prompt generation tests (§III)."""

import numpy as np
import pytest

from repro import nn
from repro.core.prompts import (HardPromptGenerator, SoftPromptModule,
                                baseline_prompt)
from repro.datalake.graph import Graph


@pytest.fixture()
def example_graph():
    """The Fig. 3 style neighborhood: albatross with attributes and a
    2-hop attribute of an attribute."""
    graph = Graph()
    bird = graph.add_vertex("laysan albatross")
    white = graph.add_vertex("white", kind="attribute")
    wings = graph.add_vertex("long-wings", kind="attribute")
    grey = graph.add_vertex("grey", kind="attribute")
    graph.add_edge(bird, white, "has crown color")
    graph.add_edge(bird, wings, "has wing shape")
    graph.add_edge(wings, grey, "has wing color")
    return graph, bird


class TestBaselinePrompt:
    def test_substitution(self):
        assert baseline_prompt("albatross") == "a photo of a albatross"

    def test_custom_template(self):
        assert baseline_prompt("x", "see [MASK] here") == "see x here"

    def test_template_requires_mask(self):
        with pytest.raises(ValueError):
            baseline_prompt("x", "no placeholder")


class TestHardPrompt:
    def test_one_hop_subprompts(self, example_graph):
        graph, bird = example_graph
        prompt = HardPromptGenerator(graph, d=1, prefix="").generate(bird)
        assert prompt.startswith("laysan albatross")
        assert "has crown color in white" in prompt
        assert "has wing shape in long-wings" in prompt
        assert "grey" not in prompt  # 2 hops away

    def test_two_hop_includes_parent_prefix(self, example_graph):
        graph, bird = example_graph
        prompt = HardPromptGenerator(graph, d=2, prefix="").generate(bird)
        assert "long-wings has wing color in grey" in prompt

    def test_and_joins_last_subprompt(self, example_graph):
        graph, bird = example_graph
        prompt = HardPromptGenerator(graph, d=1, prefix="").generate(bird)
        assert " and " in prompt

    def test_isolated_vertex_is_label_only(self):
        graph = Graph()
        v = graph.add_vertex("lonely")
        assert HardPromptGenerator(graph, prefix="").generate(v) == "lonely"

    def test_prefix_applied(self, example_graph):
        graph, bird = example_graph
        prompt = HardPromptGenerator(graph, d=1).generate(bird)
        assert prompt.startswith("a photo of a laysan albatross")

    def test_ref_edges_drop_ref_token(self):
        graph = Graph()
        a = graph.add_vertex("a")
        b = graph.add_vertex("b")
        graph.add_edge(a, b, "ref related to")
        prompt = HardPromptGenerator(graph, prefix="").generate(a)
        assert "related to b" in prompt
        assert "ref" not in prompt

    def test_incoming_edges_serialized(self):
        graph = Graph()
        a = graph.add_vertex("a")
        b = graph.add_vertex("b")
        graph.add_edge(b, a, "has part")
        prompt = HardPromptGenerator(graph, prefix="").generate(a)
        assert "b" in prompt

    def test_d_must_be_positive(self, example_graph):
        graph, _ = example_graph
        with pytest.raises(ValueError):
            HardPromptGenerator(graph, d=0)

    def test_generate_batch(self, example_graph):
        graph, bird = example_graph
        prompts = HardPromptGenerator(graph).generate_batch([bird, bird])
        assert len(prompts) == 2
        assert prompts[0] == prompts[1]


class TestSoftPromptModule:
    def test_shapes_and_normalization(self, tiny_bundle, tiny_dataset):
        module = SoftPromptModule(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_bundle.clip.clone(), tiny_bundle.tokenizer,
            tiny_bundle.minilm, rng=0)
        vertices = tiny_dataset.entity_vertices[:4]
        out = module(vertices)
        assert out.shape == (4, tiny_bundle.clip.embed_dim)
        norms = np.linalg.norm(out.numpy(), axis=1)
        np.testing.assert_allclose(norms, np.ones(4), atol=1e-4)

    def test_prompt_matrix_rows(self, tiny_bundle, tiny_dataset):
        module = SoftPromptModule(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_bundle.clip.clone(), tiny_bundle.tokenizer,
            tiny_bundle.minilm, rng=0)
        vertices = tiny_dataset.entity_vertices[:3]
        matrix = module.prompt_matrix(vertices)
        assert matrix.shape == (3, tiny_bundle.minilm.dim)

    def test_prompts_are_trainable(self, tiny_bundle, tiny_dataset):
        clip = tiny_bundle.clip.clone()
        module = SoftPromptModule(
            tiny_dataset.graph, tiny_dataset.entity_vertices, clip,
            tiny_bundle.tokenizer, tiny_bundle.minilm, rng=0)
        out = module(tiny_dataset.entity_vertices[:2])
        out.sum().backward()
        assert module.prompt_table.grad is not None
        assert module.fusion.weight.grad is not None


class TestSoftPromptDegenerateLabels:
    def test_empty_label_vertex_stays_finite(self, tiny_bundle, tiny_dataset):
        """Regression: a vertex whose label contributes no real tokens
        must still produce finite, unit-norm embeddings."""
        graph = Graph()
        empty = graph.add_vertex("")
        other = graph.add_vertex("laysan albatross")
        graph.add_edge(other, empty, "related to")
        module = SoftPromptModule(graph, [empty, other],
                                  tiny_bundle.clip.clone(),
                                  tiny_bundle.tokenizer, tiny_bundle.minilm,
                                  rng=0)
        out = module([empty, other]).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(2),
                                   atol=1e-4)

    def test_all_pad_mask_does_not_divide_by_zero(self, tiny_bundle,
                                                  tiny_dataset):
        """Force the degenerate all-pad mask directly: the pooled-label
        denominator must clamp instead of emitting NaN rows that poison
        every similarity they reach."""
        module = SoftPromptModule(
            tiny_dataset.graph, tiny_dataset.entity_vertices,
            tiny_bundle.clip.clone(), tiny_bundle.tokenizer,
            tiny_bundle.minilm, rng=0)
        module._label_mask = np.zeros_like(module._label_mask)
        out = module(tiny_dataset.entity_vertices[:3]).numpy()
        assert np.isfinite(out).all()
