"""Arrival processes: determinism, rates, phase structure, replay."""

from __future__ import annotations

import random

import pytest

from repro.loadgen import (bursty_arrivals, poisson_arrivals, replay_offsets,
                           schedule_from_traces, uniform_arrivals)


class TestUniform:
    def test_evenly_spaced_at_rate(self):
        offsets = uniform_arrivals(10.0, 1.0)
        assert len(offsets) == 10
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(abs(gap - 0.1) < 1e-12 for gap in gaps)
        assert offsets[0] == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            uniform_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            uniform_arrivals(5.0, -1.0)


class TestPoisson:
    def test_deterministic_under_seed(self):
        a = poisson_arrivals(50.0, 2.0, random.Random(7))
        b = poisson_arrivals(50.0, 2.0, random.Random(7))
        assert a == b

    def test_mean_rate_close_to_nominal(self):
        offsets = poisson_arrivals(200.0, 50.0, random.Random(1))
        # 10k expected arrivals: the realised rate is within a few %
        assert len(offsets) == pytest.approx(200.0 * 50.0, rel=0.05)
        assert all(0.0 < t < 50.0 for t in offsets)
        assert offsets == sorted(offsets)


class TestBursty:
    def test_on_phases_carry_the_burst(self):
        offsets = bursty_arrivals(5.0, 500.0, 0.5, 0.5, 4.0,
                                  random.Random(3))
        # classify each arrival by phase: [0,.5) on, [.5,1) off, ...
        on = [t for t in offsets if (int(t / 0.5) % 2) == 0]
        off = [t for t in offsets if (int(t / 0.5) % 2) == 1]
        # 2s of each phase: ~1000 on-arrivals vs ~10 off-arrivals
        assert len(on) > 20 * max(1, len(off))

    def test_zero_base_rate_silences_off_phases(self):
        offsets = bursty_arrivals(0.0, 100.0, 0.25, 0.25, 2.0,
                                  random.Random(5))
        assert offsets  # the on phases did fire
        assert all((int(t / 0.25) % 2) == 0 for t in offsets)

    def test_rejects_bad_phases(self):
        with pytest.raises(ValueError):
            bursty_arrivals(1.0, 10.0, 0.0, 0.5, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            bursty_arrivals(-1.0, 10.0, 0.5, 0.5, 1.0, random.Random(0))


class TestReplay:
    def test_offsets_rebased_and_scaled(self):
        starts = [100.0, 100.5, 102.0]
        assert replay_offsets(starts) == [0.0, 0.5, 2.0]
        assert replay_offsets(starts, speedup=2.0) == [0.0, 0.25, 1.0]

    def test_speedup_must_be_positive(self):
        with pytest.raises(ValueError):
            replay_offsets([1.0], speedup=0.0)

    def _trace_row(self, started, vertex, **attrs):
        events = [{"kind": "request",
                   "attrs": {"vertex": vertex, **attrs}}]
        return {"type": "trace", "trace_id": "t", "started": started,
                "spans": {"name": "serve.request", "events": events,
                          "children": []}}

    def test_schedule_from_traces_recovers_spacing_and_shape(self):
        rows = [
            self._trace_row(10.0, 3, top_k=2, budget_ms=50.0),
            self._trace_row(10.4, 7),
            {"type": "meta", "schema_version": 3},
            {"type": "trace", "trace_id": "x", "started": 11.0,
             "spans": {"name": "serve.request", "events": [],
                       "children": []}},  # no request event: skipped
        ]
        schedule, skipped = schedule_from_traces(rows)
        assert skipped == 1
        assert [offset for offset, _ in schedule] == [0.0, pytest.approx(0.4)]
        first, second = (request for _, request in schedule)
        assert first == {"vertex": 3, "top_k": 2, "budget_ms": 50.0}
        assert second == {"vertex": 7}

    def test_rows_without_started_are_skipped(self):
        rows = [{"type": "trace", "trace_id": "y",
                 "spans": {"name": "serve.request",
                           "events": [{"kind": "request",
                                       "attrs": {"vertex": 1}}],
                           "children": []}}]
        schedule, skipped = schedule_from_traces(rows)
        assert schedule == [] and skipped == 1
