"""Query mixes: determinism, heavy tail, dirty fraction, validation."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.loadgen import QueryMix


class TestQueryMix:
    def test_deterministic_under_seed(self):
        one = [QueryMix(range(20), rng=random.Random("m")).sample()
               for _ in range(50)]
        two = [QueryMix(range(20), rng=random.Random("m")).sample()
               for _ in range(50)]
        assert one == two

    def test_skew_concentrates_on_few_vertices(self):
        mix = QueryMix(range(100), skew=1.5, rng=random.Random(1))
        counts = Counter(mix.sample()["vertex"] for _ in range(3000))
        top_two = sum(count for _, count in counts.most_common(2))
        assert top_two > 0.35 * 3000  # the head dominates
        # zero skew degenerates to (roughly) uniform: no vertex dominates
        flat = QueryMix(range(100), skew=0.0, rng=random.Random(1))
        flat_counts = Counter(flat.sample()["vertex"] for _ in range(3000))
        assert flat_counts.most_common(1)[0][1] < 0.05 * 3000

    def test_top_k_values_follow_weights(self):
        mix = QueryMix(range(10), rng=random.Random(2))
        ks = Counter(mix.sample()["top_k"] for _ in range(2000))
        assert set(ks) <= {1, 3, 5}
        assert ks[1] > ks[3] > ks[5]

    def test_bad_fraction_emits_unknown_vertices(self):
        mix = QueryMix(range(10), bad_fraction=0.5, rng=random.Random(3))
        vertices = [mix.sample()["vertex"] for _ in range(400)]
        bad = [v for v in vertices if v < 0]
        assert 100 < len(bad) < 300  # ~50%
        assert all(v in range(10) for v in vertices if v >= 0)

    def test_budget_attached_when_configured(self):
        mix = QueryMix(range(5), budget_ms=25.0, rng=random.Random(4))
        assert mix.sample()["budget_ms"] == 25.0
        assert "budget_ms" not in QueryMix(range(5)).sample()

    @pytest.mark.parametrize("kwargs", [
        dict(vertices=()),
        dict(vertices=range(3), skew=-0.1),
        dict(vertices=range(3), bad_fraction=1.5),
        dict(vertices=range(3), budget_ms=0.0),
        dict(vertices=range(3), top_k_weights=()),
        dict(vertices=range(3), top_k_weights=((0, 1.0),)),
        dict(vertices=range(3), top_k_weights=((1, 0.0), (2, 0.0))),
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        vertices = kwargs.pop("vertices")
        with pytest.raises(ValueError):
            QueryMix(vertices, **kwargs)
