"""Loadgen fixtures: a deterministic fake clock and a cheap service.

The fake clock makes the open-loop schedule semantics *provable*: a
test advances time only through ``sleep`` and explicit stalls, so
intended-arrival latencies come out exact, not approximate.
"""

from __future__ import annotations

import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import (registry, reset_spans, set_tracing_enabled,
                       trace_recorder)
from repro.serve import MatchService, ServeConfig


@pytest.fixture(autouse=True)
def clean_metrics():
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)
    yield
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)


class FakeClock:
    """A manually advanced monotonic clock with a matching sleeper."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += max(0.0, seconds)


@pytest.fixture()
def fake_clock():
    return FakeClock()


@pytest.fixture(scope="session")
def fitted_hard(tiny_bundle, tiny_dataset):
    """The cheapest real matcher (hard prompts, no tuning) — load tests
    exercise the serving path, not training quality."""
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                tiny_dataset.entity_vertices)
    return matcher


@pytest.fixture()
def make_service(fitted_hard):
    """Pre-warmed services over the shared fitted matcher."""
    created = []

    def make(**overrides) -> MatchService:
        settings = dict(capacity=8, workers=1)
        settings.update(overrides)
        service = MatchService(fitted_hard,
                               config=ServeConfig(**settings)).warmup()
        created.append(service)
        return service

    yield make
    for service in created:
        service.shutdown(timeout=5.0)
