"""The open-loop harness: coordinated-omission correction, outcome
classification, schedule determinism, and the real-service drive mode."""

from __future__ import annotations

import pytest

from repro.loadgen import (LoadConfig, LoadHarness, build_schedule,
                           classify_response, run_schedule)
from repro.obs import registry


class TestClassify:
    @pytest.mark.parametrize("response,outcome", [
        ({"ok": True}, "ok"),
        ({"ok": True, "degraded": False}, "ok"),
        ({"ok": True, "degraded": True}, "degraded"),
        ({"ok": False, "error": {"type": "overloaded"}}, "shed"),
        ({"ok": False, "error": {"type": "deadline_exceeded"}}, "deadline"),
        ({"ok": False, "error": {"type": "bad_request"}}, "error"),
        ({"ok": False, "error": {"type": "internal"}}, "error"),
        ({"ok": False}, "error"),
    ])
    def test_maps_serve_responses_to_outcomes(self, response, outcome):
        assert classify_response(response) == outcome


class TestLoadConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(process="warp"),
        dict(rate=0.0),
        dict(duration=0.0),
        dict(burst_rate=-1.0),
        dict(on_seconds=0.0),
        dict(bad_fraction=2.0),
        dict(skew=-1.0),
        dict(budget_ms=0.0),
        dict(process="replay"),  # replay without a schedule
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadConfig(**kwargs)

    def test_describe_elides_replay_payload(self):
        config = LoadConfig(process="replay", replay=[(0.0, {"vertex": 1})])
        assert config.describe()["replay"] == 1


class TestSchedule:
    def test_same_seed_same_schedule(self):
        config = LoadConfig(process="poisson", rate=100.0, duration=1.0,
                            seed=5)
        assert build_schedule(config, range(10)) == \
            build_schedule(config, range(10))

    def test_arrival_process_change_keeps_query_sequence(self):
        """Arrivals and mix draw from separate seeded streams, so an A/B
        of arrival processes offers the *same* query sequence."""
        vertices = range(50)
        poisson = build_schedule(LoadConfig(process="poisson", rate=100.0,
                                            duration=1.0, seed=9), vertices)
        uniform = build_schedule(LoadConfig(process="uniform", rate=100.0,
                                            duration=1.0, seed=9), vertices)
        n = min(len(poisson), len(uniform))
        strip = lambda req: {k: v for k, v in req.items() if k != "id"}
        assert [strip(r) for _, r in poisson[:n]] == \
            [strip(r) for _, r in uniform[:n]]

    def test_ids_are_sequential(self):
        schedule = build_schedule(
            LoadConfig(process="uniform", rate=10.0, duration=1.0),
            range(4))
        assert [request["id"] for _, request in schedule] == \
            [f"lg-{i}" for i in range(10)]


class TestCoordinatedOmission:
    def test_stall_charges_queued_requests_from_intended_time(
            self, fake_clock):
        """THE acceptance property: one 100 ms service stall must show
        up as a monotonically decreasing latency ramp across the queued
        requests — each measured from its *intended* arrival — not as
        ten identical service times."""
        calls = []

        def stalling_target(request: dict) -> dict:
            if not calls:
                fake_clock.now += 0.1  # the stall: first request hangs
            calls.append(request["id"])
            return {"id": request["id"], "ok": True}

        config = LoadConfig(process="uniform", rate=100.0, duration=0.1)
        harness = LoadHarness(config, [1, 2, 3], clock=fake_clock,
                              sleep=fake_clock.sleep)
        report = harness.run(stalling_target)

        latencies = [round(sample.latency_ms, 6)
                     for sample in report.samples]
        assert latencies == [100.0, 90.0, 80.0, 70.0, 60.0,
                             50.0, 40.0, 30.0, 20.0, 10.0]
        # a closed-loop/service-time recorder would have reported ten
        # samples of which only the first shows the stall
        assert latencies == sorted(latencies, reverse=True)
        assert report.summary()["max_lag_ms"] == pytest.approx(90.0)

    def test_no_stall_means_zero_latency_on_fake_clock(self, fake_clock):
        config = LoadConfig(process="uniform", rate=50.0, duration=0.2)
        harness = LoadHarness(config, [1], clock=fake_clock,
                              sleep=fake_clock.sleep)
        report = harness.run(lambda request: {"id": request["id"],
                                              "ok": True})
        assert [sample.latency_ms for sample in report.samples] == \
            [0.0] * 10
        assert report.summary()["max_lag_ms"] == 0.0


class TestReportBookkeeping:
    def test_summary_fractions_and_rates(self, fake_clock):
        responses = iter([
            {"ok": True},
            {"ok": True, "degraded": True},
            {"ok": False, "error": {"type": "overloaded"}},
            {"ok": False, "error": {"type": "deadline_exceeded"}},
            {"ok": False, "error": {"type": "internal"}},
        ])

        def target(request: dict) -> dict:
            return {"id": request["id"], **next(responses)}

        config = LoadConfig(process="uniform", rate=50.0, duration=0.1)
        harness = LoadHarness(config, [1], clock=fake_clock,
                              sleep=fake_clock.sleep)
        summary = harness.run(target).summary()
        assert summary["offered"] == 5
        assert summary["answered"] == 2
        assert summary["availability"] == pytest.approx(0.4)
        assert summary["degraded_fraction"] == pytest.approx(0.2)
        assert summary["shed_fraction"] == pytest.approx(0.2)
        assert summary["error_fraction"] == pytest.approx(0.4)
        assert summary["offered_rate"] == pytest.approx(
            5 / summary["duration_s"])

    def test_latency_objectives_judge_answered_only(self, fake_clock):
        """Sheds answer instantly; letting them into the latency pool
        would reward shedding with a better p99."""
        def target(request: dict) -> dict:
            if int(request["id"].split("-")[1]) % 2:
                return {"id": request["id"], "ok": False,
                        "error": {"type": "overloaded"}}
            fake_clock.now += 0.05  # answered requests cost 50 ms
            return {"id": request["id"], "ok": True}

        config = LoadConfig(process="uniform", rate=20.0, duration=0.5)
        harness = LoadHarness(config, [1], clock=fake_clock,
                              sleep=fake_clock.sleep)
        report = harness.run(target)
        answered = report.answered_latency()
        assert answered.count == 5
        assert answered.min == pytest.approx(50.0)  # no 0 ms shed samples

    def test_publish_lands_in_registry_with_buckets(self, fake_clock):
        config = LoadConfig(process="uniform", rate=10.0, duration=0.5)
        harness = LoadHarness(config, [1], clock=fake_clock,
                              sleep=fake_clock.sleep)
        report = harness.run(lambda request: {"id": request["id"],
                                              "ok": True})
        report.publish()
        reg = registry()
        assert reg.counter("load.offered_total").value == 5
        assert reg.counter("load.outcome.ok").value == 5
        row = reg.histogram("load.latency_ms").row()
        assert row["count"] == 5
        assert "buckets" in row and "p99" in row

    def test_artifact_round_trip(self, fake_clock, tmp_path):
        config = LoadConfig(process="uniform", rate=10.0, duration=0.5)
        harness = LoadHarness(config, [1], clock=fake_clock,
                              sleep=fake_clock.sleep)
        report = harness.run(lambda request: {"id": request["id"],
                                              "ok": True})
        path = report.save(tmp_path / "run.json")
        import json

        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.loadreport/1"
        assert doc["summary"]["offered"] == 5
        assert doc["latency"]["count"] == 5
        assert doc["meta"]["config"]["process"] == "uniform"


class TestServiceMode:
    def test_drives_real_service_and_classifies(self, make_service,
                                                fitted_hard):
        service = make_service(workers=2)
        vertices = fitted_hard.vertex_ids
        config = LoadConfig(process="uniform", rate=100.0, duration=0.25,
                            bad_fraction=0.3, seed=2)
        harness = LoadHarness(config, vertices)
        report = harness.run(service)
        summary = report.summary()
        assert summary["offered"] == 25
        outcomes = summary["outcomes"]
        assert outcomes["lost"] == 0  # shutdown drained everything
        assert outcomes["ok"] > 0
        assert outcomes["error"] > 0  # the dirty queries
        assert sum(outcomes.values()) == summary["offered"]

    def test_rejections_counted_as_shed(self, fake_clock):
        """An admission-path rejection (submit returns the error
        response instead of None) must be recorded as shed."""

        class SheddingService:
            def start(self, emit):
                self.emit = emit

            def submit(self, request):
                return {"id": request["id"], "ok": False,
                        "error": {"type": "overloaded"}}

            def shutdown(self, timeout=30.0):
                pass

        config = LoadConfig(process="uniform", rate=50.0, duration=0.1)
        schedule = build_schedule(config, [1, 2])
        report = run_schedule(SheddingService(), schedule,
                              clock=fake_clock, sleep=fake_clock.sleep)
        assert report.summary()["outcomes"]["shed"] == 5

    def test_unanswered_requests_recorded_as_lost(self, fake_clock):
        """A service that swallows requests without ever emitting must
        not silently shrink the sample count — the gap surfaces as
        ``lost`` after the drain."""

        class BlackHoleService:
            def start(self, emit):
                self.emit = emit

            def submit(self, request):
                return None  # accepted... and never answered

            def shutdown(self, timeout=30.0):
                pass

        config = LoadConfig(process="uniform", rate=20.0, duration=0.2)
        schedule = build_schedule(config, [1])
        report = run_schedule(BlackHoleService(), schedule,
                              clock=fake_clock, sleep=fake_clock.sleep)
        summary = report.summary()
        assert summary["outcomes"]["lost"] == 4
        assert summary["availability"] == 0.0
