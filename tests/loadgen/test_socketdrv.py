"""The socket driver: the load harness over a real TCP server.

The driver must be indistinguishable from an in-process service to
``run_schedule`` — every offered request accounted exactly once (ok,
shed, or a synthesized ``unavailable`` when the pipe dies), nothing
lost, nothing raised into the dispatch loop.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.loadgen import (LoadConfig, SocketDriver, build_schedule,
                           fetch_info, parse_address, probe_info,
                           run_schedule)
from repro.netserve import NetServeConfig, NetServer


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.1.2.3:9000") == ("10.1.2.3", 9000)

    def test_bare_port_defaults_to_localhost(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    def test_port_zero_allowed_for_listeners(self):
        assert parse_address("0.0.0.0:0") == ("0.0.0.0", 0)

    @pytest.mark.parametrize("spec", ["9000", "host:", "host:abc",
                                      "host:70000", ""])
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_address(spec)


@pytest.fixture()
def live_server(make_service):
    """A real NetServer over the cheap fitted service, torn down through
    the drain path."""
    service = make_service(capacity=64)
    server = NetServer(service, NetServeConfig(
        host="127.0.0.1", port=0, batch_window_ms=5.0, max_batch=16,
        drain_timeout_s=10.0))
    ready = threading.Event()
    bound = {}

    def on_ready(address):
        bound["address"] = address
        ready.set()

    thread = threading.Thread(
        target=lambda: server.run(install_signals=False, ready=on_ready),
        daemon=True)
    thread.start()
    assert ready.wait(timeout=60)
    yield server, bound["address"]
    server.trigger_drain()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestFetchInfo:
    def test_info_names_the_vertex_space(self, live_server, fitted_hard):
        _, address = live_server
        info = fetch_info(address)
        assert info["vertices"] == [int(v) for v in fitted_hard.vertex_ids]
        assert info["images"] == len(fitted_hard.images)

    def test_connection_refused_is_loud(self):
        with pytest.raises(OSError):
            fetch_info(("127.0.0.1", 9), timeout=2.0)


class TestSocketDriver:
    def test_full_schedule_accounted_over_the_wire(self, live_server,
                                                   fitted_hard):
        _, address = live_server
        config = LoadConfig(process="uniform", rate=200.0, duration=0.25,
                            seed=3)
        schedule = build_schedule(config,
                                  [int(v) for v in fitted_hard.vertex_ids])
        report = run_schedule(SocketDriver(address), schedule)
        summary = report.summary()
        assert summary["offered"] == len(schedule)
        assert summary["outcomes"]["lost"] == 0
        assert summary["outcomes"]["ok"] == len(schedule)
        assert summary["availability"] == 1.0

    def test_shutdown_handshake_drains_trailing_responses(self,
                                                          live_server,
                                                          fitted_hard):
        """Responses still in the server's window when the driver
        shuts down must be read back before shutdown() returns —
        that is the SHUT_WR half-close contract."""
        _, address = live_server
        responses = []
        driver = SocketDriver(address)
        driver.start(responses.append)
        for i, vertex in enumerate(fitted_hard.vertex_ids[:5]):
            assert driver.submit({"id": i, "vertex": int(vertex)}) is None
        driver.shutdown()  # no sleep: the handshake must do the waiting
        assert sorted(r["id"] for r in responses) == [0, 1, 2, 3, 4]
        assert all(r["ok"] for r in responses)

    def test_lost_connection_becomes_typed_response(self, live_server):
        server, address = live_server
        responses = []
        driver = SocketDriver(address)
        driver.start(responses.append)
        server.trigger_drain()  # server goes away under the driver
        deadline = time.monotonic() + 10.0
        synthesized = None
        while time.monotonic() < deadline and synthesized is None:
            result = driver.submit({"id": "after-loss", "vertex": 1})
            if result is not None:
                synthesized = result
            time.sleep(0.02)
        assert synthesized is not None, "submit never noticed the loss"
        assert synthesized["ok"] is False
        assert synthesized["error"]["type"] == "unavailable"
        assert synthesized["id"] == "after-loss"
        driver.shutdown()


@pytest.fixture()
def flaky_info_server():
    """A listener whose first N connections hang up without answering
    and whose later ones answer ``info`` properly — the mid-restart
    server the retry exists for."""
    server = socket.create_server(("127.0.0.1", 0))
    server.settimeout(0.2)
    stop = threading.Event()
    state = {"failures_left": 0, "connections": 0}

    def loop():
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            state["connections"] += 1
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                conn.close()  # EOF before any response line
                continue
            stream = conn.makefile("rwb")
            line = stream.readline()
            request = json.loads(line)
            stream.write((json.dumps(
                {"id": request.get("id"), "ok": True,
                 "info": {"images": 9, "top_k_default": 2}}) +
                "\n").encode("utf-8"))
            stream.flush()
            conn.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    yield server.getsockname()[:2], state
    stop.set()
    server.close()
    thread.join(timeout=5.0)


class TestInfoRetry:
    def test_one_dropped_connection_is_absorbed(self, flaky_info_server):
        address, state = flaky_info_server
        state["failures_left"] = 1
        info = fetch_info(address, timeout=5.0)
        assert info["images"] == 9
        assert state["connections"] == 2, "exactly one retry"

    def test_retries_are_bounded(self, flaky_info_server):
        address, state = flaky_info_server
        state["failures_left"] = 10
        with pytest.raises((OSError, ValueError)):
            fetch_info(address, timeout=5.0, attempts=2)
        assert state["connections"] == 2, "attempts is a hard cap"

    def test_single_attempt_fails_fast(self, flaky_info_server):
        address, state = flaky_info_server
        state["failures_left"] = 1
        with pytest.raises((OSError, ValueError)):
            fetch_info(address, timeout=5.0, attempts=1)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            fetch_info(("127.0.0.1", 9), attempts=0)


class TestProbeInfo:
    def test_live_server_probes_ok(self, flaky_info_server):
        address, _ = flaky_info_server
        probe = probe_info(address, timeout=5.0)
        assert probe["ok"] is True
        assert probe["info"]["images"] == 9

    def test_dead_address_synthesizes_typed_unavailable(self):
        probe = probe_info(("127.0.0.1", 9), timeout=1.0)
        assert probe["ok"] is False
        assert probe["error"]["type"] == "unavailable"
        assert "127.0.0.1:9" in probe["error"]["message"]

    def test_never_raises_even_on_garbage(self, flaky_info_server):
        address, state = flaky_info_server
        state["failures_left"] = 5
        probe = probe_info(address, timeout=1.0)
        assert probe["ok"] is False
        assert probe["error"]["type"] == "unavailable"
