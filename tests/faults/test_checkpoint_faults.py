"""Fault injection against the checkpoint container and manager.

Every test damages a checkpoint some specific way — truncation at
arbitrary byte offsets, bit flips, crashed renames, files from a future
schema — and asserts the recovery contract: a typed
``CheckpointCorruptError`` (never a raw ``BadZipFile``/``KeyError``),
quarantine instead of re-tripping, and fallback to the newest older
checkpoint that still verifies.
"""

import os

import numpy as np
import pytest

from repro.core import checkpoint as ckpt
from repro.core.checkpoint import (CheckpointCorruptError, CheckpointManager,
                                   read_checkpoint, write_checkpoint)
from repro.obs import registry


@pytest.fixture()
def state():
    arrays = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
              "step": np.asarray([7], dtype=np.int64)}
    meta = {"kind": "base", "prompt": "soft", "epoch": 3, "seed": 0}
    return arrays, meta


class TestContainerFormat:
    def test_roundtrip(self, state, tmp_path):
        arrays, meta = state
        path = write_checkpoint(tmp_path / "a.ckpt", arrays, meta)
        restored, restored_meta = read_checkpoint(path)
        assert restored_meta == meta
        assert set(restored) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(restored[key], arrays[key])

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint(tmp_path / "never-written.ckpt")

    def test_truncation_at_any_byte_is_detected(self, state, tmp_path):
        """Cutting the file at *every* region — inside the magic, the
        header length, the header JSON, the payload — must surface as
        the one typed corruption error."""
        arrays, meta = state
        path = write_checkpoint(tmp_path / "a.ckpt", arrays, meta)
        blob = path.read_bytes()
        cuts = set(range(0, len(blob), max(1, len(blob) // 23)))
        cuts.update([0, 1, len(ckpt.CHECKPOINT_MAGIC),
                     len(ckpt.CHECKPOINT_MAGIC) + 3, len(blob) - 1])
        victim = tmp_path / "cut.ckpt"
        for cut in sorted(cuts):
            victim.write_bytes(blob[:cut])
            with pytest.raises(CheckpointCorruptError):
                read_checkpoint(victim)

    def test_payload_bitflip_fails_digest(self, state, tmp_path):
        arrays, meta = state
        path = write_checkpoint(tmp_path / "a.ckpt", arrays, meta)
        blob = bytearray(path.read_bytes())
        blob[-20] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="digest"):
            read_checkpoint(path)

    def test_foreign_bytes_rejected(self, state, tmp_path):
        path = tmp_path / "noise.ckpt"
        path.write_bytes(b"definitely not a checkpoint, but long enough")
        with pytest.raises(CheckpointCorruptError, match="magic"):
            read_checkpoint(path)

    def test_future_schema_rejected(self, state, tmp_path, monkeypatch):
        arrays, meta = state
        monkeypatch.setattr(ckpt, "SCHEMA_VERSION", ckpt.SCHEMA_VERSION + 1)
        path = write_checkpoint(tmp_path / "future.ckpt", arrays, meta)
        monkeypatch.undo()
        with pytest.raises(CheckpointCorruptError, match="schema"):
            read_checkpoint(path)

    def test_corruption_is_counted(self, state, tmp_path):
        arrays, meta = state
        path = write_checkpoint(tmp_path / "a.ckpt", arrays, meta)
        path.write_bytes(path.read_bytes()[:10])
        before = registry().counter("ckpt.corrupt").value
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)
        assert registry().counter("ckpt.corrupt").value == before + 1


class TestCrashedWrites:
    def test_failed_rename_preserves_previous_checkpoint(self, state,
                                                         tmp_path,
                                                         monkeypatch):
        """A crash at the rename step (the atomicity boundary) must
        leave the previous checkpoint byte-for-byte intact and no temp
        litter behind."""
        arrays, meta = state
        path = write_checkpoint(tmp_path / "a.ckpt", arrays, meta)
        good = path.read_bytes()

        def broken_replace(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            write_checkpoint(path, {"w": np.zeros(3)}, {"epoch": 99})
        monkeypatch.undo()
        assert path.read_bytes() == good
        assert not list(tmp_path.glob("*.tmp-*"))
        _, restored_meta = read_checkpoint(path)
        assert restored_meta["epoch"] == meta["epoch"]

    def test_transient_rename_failure_is_retried(self, state, tmp_path,
                                                 monkeypatch):
        arrays, meta = state
        real_replace = os.replace
        failures = {"left": 2}

        def flaky_replace(src, dst):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("transient")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        path = write_checkpoint(tmp_path / "flaky.ckpt", arrays, meta)
        monkeypatch.undo()
        assert failures["left"] == 0
        _, restored_meta = read_checkpoint(path)
        assert restored_meta == meta


class TestCheckpointManager:
    def test_latest_skips_and_quarantines_corrupt(self, state, tmp_path):
        arrays, meta = state
        manager = CheckpointManager(tmp_path)
        manager.save(0, arrays, dict(meta, epoch=1))
        newest = manager.save(1, arrays, dict(meta, epoch=2))
        newest.write_bytes(newest.read_bytes()[: 40])
        found = manager.latest()
        assert found is not None
        restored_arrays, restored_meta, path = found
        assert restored_meta["epoch"] == 1
        assert path == manager.path_for(0)
        # the damaged file was moved aside, not left to re-trip readers
        assert not newest.exists()
        assert list(tmp_path.glob("*.corrupt"))

    def test_all_corrupt_means_none(self, state, tmp_path):
        arrays, meta = state
        manager = CheckpointManager(tmp_path)
        for epoch in range(2):
            manager.save(epoch, arrays, meta).write_bytes(b"junk")
        assert manager.latest() is None
        assert len(list(tmp_path.glob("*.corrupt*"))) == 2

    def test_empty_or_missing_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None
        assert CheckpointManager(tmp_path / "nope").latest() is None

    def test_prune_keeps_newest(self, state, tmp_path):
        arrays, meta = state
        manager = CheckpointManager(tmp_path, keep=2)
        for epoch in range(5):
            manager.save(epoch, arrays, dict(meta, epoch=epoch + 1))
        remaining = manager.checkpoints()
        assert remaining == [manager.path_for(3), manager.path_for(4)]

    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=3)
        saved = [epoch for epoch in range(9) if manager.should_save(epoch)]
        assert saved == [2, 5, 8]

    def test_invalid_knobs_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)
