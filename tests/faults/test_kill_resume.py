"""Kill/resume equivalence: the acceptance criterion of the robustness
layer.

A fit killed between epochs and resumed from its last checkpoint must
produce a ``score()`` matrix *bit-identical* to an uninterrupted run
with the same seed — assertions here use ``assert_array_equal``, not an
``atol``.  Resume exactness rests on three restored pieces: the tuned
parameters, the AdamW moments + step counter, and the training RNG's
bit-generator state.
"""

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointMismatchError
from repro.core.crossem_plus import CrossEMPlus, CrossEMPlusConfig
from repro.core.matcher import CrossEM, CrossEMConfig

SOFT = dict(prompt="soft", epochs=4, lr=1e-3, seed=3)


def _fit(matcher, dataset, **kwargs):
    return matcher.fit(dataset.graph, dataset.images,
                       dataset.entity_vertices, **kwargs)


@pytest.fixture(scope="module")
def uninterrupted(tiny_bundle, tiny_dataset):
    """The golden run: 4 soft epochs straight through."""
    matcher = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)), tiny_dataset)
    return matcher.score(), list(matcher.epoch_losses)


class TestKillResume:
    def test_kill_between_epochs_resumes_bit_identical(
            self, tiny_bundle, tiny_dataset, tmp_path, uninterrupted):
        """Process dies after epoch 2 (simulated by a 2-epoch config
        writing checkpoints); a fresh process resumes to epoch 4."""
        killed = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, epochs=2)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path)
        assert list(tmp_path.glob("ckpt-*.ckpt"))

        resumed = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)),
                       tiny_dataset, resume_from=tmp_path)
        expected_scores, expected_losses = uninterrupted
        np.testing.assert_array_equal(resumed.score(), expected_scores)
        assert resumed.epoch_losses == expected_losses

    def test_kill_mid_epoch_resumes_from_epoch_boundary(
            self, tiny_bundle, tiny_dataset, tmp_path, uninterrupted,
            monkeypatch):
        """An exception in the middle of epoch 3 (after checkpoints for
        epochs 1-2 exist) loses only that epoch's partial work."""
        victim = CrossEM(tiny_bundle, CrossEMConfig(**SOFT))
        original = CrossEM._refresh_pseudo_labels
        calls = {"n": 0}

        def dying_refresh(self):
            calls["n"] += 1
            if calls["n"] == 3:  # third epoch begins -> kill
                raise RuntimeError("simulated kill -9")
            return original(self)

        monkeypatch.setattr(CrossEM, "_refresh_pseudo_labels", dying_refresh)
        with pytest.raises(RuntimeError, match="simulated kill"):
            _fit(victim, tiny_dataset, checkpoint_dir=tmp_path)
        monkeypatch.undo()

        resumed = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)),
                       tiny_dataset, resume_from=tmp_path)
        expected_scores, _ = uninterrupted
        np.testing.assert_array_equal(resumed.score(), expected_scores)

    def test_corrupt_newest_checkpoint_falls_back_bit_identical(
            self, tiny_bundle, tiny_dataset, tmp_path, uninterrupted):
        """Truncating the newest checkpoint forces resume from the one
        before it — re-running one extra epoch, same final state."""
        killed = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, epochs=3)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path)
        newest = sorted(tmp_path.glob("ckpt-*.ckpt"))[-1]
        newest.write_bytes(newest.read_bytes()[: 100])

        resumed = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)),
                       tiny_dataset, resume_from=tmp_path)
        expected_scores, _ = uninterrupted
        np.testing.assert_array_equal(resumed.score(), expected_scores)
        assert list(tmp_path.glob("*.corrupt"))

    def test_resume_from_empty_directory_trains_fresh(
            self, tiny_bundle, tiny_dataset, tmp_path, uninterrupted):
        """Crash-retry loops pass the same flags on the first run: an
        empty checkpoint directory must mean 'train from scratch', not
        an error."""
        matcher = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)),
                       tiny_dataset, resume_from=tmp_path,
                       checkpoint_dir=tmp_path)
        expected_scores, _ = uninterrupted
        np.testing.assert_array_equal(matcher.score(), expected_scores)

    def test_checkpoint_cadence_still_exact(self, tiny_bundle, tiny_dataset,
                                            tmp_path, uninterrupted):
        """checkpoint_every=2 writes fewer snapshots (plus the final
        epoch) but resume stays bit-identical."""
        killed = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, epochs=3)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path,
             checkpoint_every=2)
        # epochs 0..2 with cadence 2 -> snapshots after epoch 2 (0-based
        # epoch 1) and the forced final one (0-based epoch 2)
        assert len(list(tmp_path.glob("ckpt-*.ckpt"))) == 2
        resumed = _fit(CrossEM(tiny_bundle, CrossEMConfig(**SOFT)),
                       tiny_dataset, resume_from=tmp_path)
        expected_scores, _ = uninterrupted
        np.testing.assert_array_equal(resumed.score(), expected_scores)


class TestResumeValidation:
    def test_seed_mismatch_rejected(self, tiny_bundle, tiny_dataset,
                                    tmp_path):
        killed = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, epochs=1)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path)
        other = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, seed=99)))
        with pytest.raises(CheckpointMismatchError, match="seed"):
            _fit(other, tiny_dataset, resume_from=tmp_path)

    def test_matcher_kind_mismatch_rejected(self, tiny_bundle, tiny_dataset,
                                            tmp_path):
        killed = CrossEM(tiny_bundle, CrossEMConfig(**dict(SOFT, epochs=1)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path)
        plus = CrossEMPlus(tiny_bundle, CrossEMPlusConfig(
            epochs=2, lr=1e-3, seed=3))
        with pytest.raises(CheckpointMismatchError, match="kind"):
            _fit(plus, tiny_dataset, resume_from=tmp_path)

    def test_explicit_missing_checkpoint_file_errors(self, tiny_bundle,
                                                     tiny_dataset, tmp_path):
        """A *directory* without checkpoints trains fresh, but naming a
        specific file that does not exist is a user error."""
        matcher = CrossEM(tiny_bundle, CrossEMConfig(**SOFT))
        with pytest.raises(FileNotFoundError):
            _fit(matcher, tiny_dataset,
                 resume_from=tmp_path / "ckpt-000000.ckpt")


class TestPlusKillResume:
    def test_plus_resume_bit_identical(self, tiny_bundle, tiny_dataset,
                                       tmp_path):
        """CrossEM+ rebuilds its PCP partition plan deterministically on
        resume; scores stay bit-identical across the kill."""
        config = dict(epochs=3, lr=1e-3, seed=2)
        full = _fit(CrossEMPlus(tiny_bundle, CrossEMPlusConfig(**config)),
                    tiny_dataset)
        killed = CrossEMPlus(tiny_bundle,
                             CrossEMPlusConfig(**dict(config, epochs=1)))
        _fit(killed, tiny_dataset, checkpoint_dir=tmp_path)
        resumed = _fit(CrossEMPlus(tiny_bundle, CrossEMPlusConfig(**config)),
                       tiny_dataset, resume_from=tmp_path)
        np.testing.assert_array_equal(resumed.score(), full.score())
