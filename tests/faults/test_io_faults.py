"""Fault injection against the shared I/O layer and its users.

Covers the :mod:`repro.iosafe` primitives directly, then the two disk
consumers that ride on them: the zoo's bundle cache (quarantine +
rebuild) and matcher persistence (typed corruption errors, atomic
saves, loud failures on incomplete archives).
"""

import random
import threading

import numpy as np
import pytest

from repro.clip import zoo
from repro.clip.pretrain import PretrainConfig
from repro.core.matcher import CrossEM, CrossEMConfig
from repro.core.persistence import load_matcher, save_matcher
from repro.iosafe import (CorruptArtifactError, atomic_write_bytes,
                          quarantine, retry_io)
from repro.obs import registry


class TestRetryIO:
    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}
        delays = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return 42

        assert retry_io(flaky, sleep=delays.append, jitter=False) == 42
        assert calls["n"] == 3
        assert delays == [0.05, 0.1]  # exponential backoff

    def test_full_jitter_draws_within_the_backoff_cap(self):
        calls = {"n": 0}
        delays = []

        def flaky():
            calls["n"] += 1
            raise OSError("transient")

        with pytest.raises(OSError):
            retry_io(flaky, attempts=5, base_delay=0.05,
                     sleep=delays.append, rng=random.Random(7))
        assert len(delays) == 4
        for attempt, delay in enumerate(delays):
            assert 0.0 <= delay <= 0.05 * (2 ** attempt)
        # a seeded rng makes the draws reproducible
        repeat = []
        calls["n"] = 0
        with pytest.raises(OSError):
            retry_io(flaky, attempts=5, base_delay=0.05,
                     sleep=repeat.append, rng=random.Random(7))
        assert repeat == delays

    def test_max_elapsed_caps_total_retry_time(self):
        clock = {"now": 0.0}
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise OSError("still broken")

        def sleep(delay):
            clock["now"] += delay

        # attempt 0 fails, backs off 1s (total 1.0 <= 2.5); attempt 1
        # fails, the next 2s backoff would overrun 2.5 -> give up early
        # instead of using all 10 attempts
        with pytest.raises(OSError, match="still broken"):
            retry_io(flaky, attempts=10, base_delay=1.0, jitter=False,
                     max_elapsed=2.5, clock=lambda: clock["now"],
                     sleep=sleep)
        assert calls["n"] == 2
        assert clock["now"] == pytest.approx(1.0)

    def test_zero_max_elapsed_means_single_attempt(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            raise OSError("transient")

        with pytest.raises(OSError):
            retry_io(flaky, attempts=5, jitter=False, max_elapsed=0.0,
                     clock=lambda: 0.0, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_negative_max_elapsed_rejected(self):
        with pytest.raises(ValueError):
            retry_io(lambda: 1, max_elapsed=-1.0)

    def test_gives_up_after_attempts(self):
        calls = {"n": 0}

        def always_broken():
            calls["n"] += 1
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_io(always_broken, attempts=4, sleep=lambda _: None)
        assert calls["n"] == 4

    def test_missing_file_is_not_retried(self):
        calls = {"n": 0}

        def missing():
            calls["n"] += 1
            raise FileNotFoundError("gone")

        with pytest.raises(FileNotFoundError):
            retry_io(missing, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_retries_are_counted(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise OSError("transient")
            return "ok"

        before = registry().counter("io.retry").value
        retry_io(flaky, sleep=lambda _: None)
        assert registry().counter("io.retry").value == before + 1


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"v1")
        atomic_write_bytes(path, b"v2")
        assert path.read_bytes() == b"v2"
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "artifact.bin"
        atomic_write_bytes(path, b"deep")
        assert path.read_bytes() == b"deep"

    def test_concurrent_writers_single_winner_no_interleaving(self,
                                                              tmp_path):
        # Four same-pid threads publish the same path at once: per-call
        # temp names keep them from trampling each other's temp file, so
        # the final bytes are exactly one thread's payload, never a mix.
        path = tmp_path / "artifact.bin"
        payloads = [bytes([i]) * 200_000 for i in range(4)]
        barrier = threading.Barrier(4)
        errors = []

        def write(payload):
            try:
                barrier.wait(timeout=10)
                atomic_write_bytes(path, payload)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(p,))
                   for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert path.read_bytes() in payloads  # one complete version
        assert not list(tmp_path.glob("*.tmp-*"))  # no temp litter


class TestQuarantine:
    def test_moves_bytes_aside(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"junk")
        moved = quarantine(path)
        assert not path.exists()
        assert moved is not None and moved.read_bytes() == b"junk"
        assert moved.name.endswith(".corrupt")

    def test_repeated_quarantines_do_not_collide(self, tmp_path):
        path = tmp_path / "bad.npz"
        names = set()
        for round_ in range(3):
            path.write_bytes(b"junk%d" % round_)
            names.add(quarantine(path).name)
        assert len(names) == 3


class TestZooCacheFaults:
    @pytest.fixture()
    def config(self):
        return PretrainConfig(epochs=1, batch_size=8, captions_per_concept=1,
                              seed=44)

    def test_truncated_cache_is_quarantined_not_fatal(self, config, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        first = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                          seed=44, config=config)
        [cache_file] = list(tmp_path.glob("bundle-*.npz"))
        payload = cache_file.read_bytes()
        cache_file.write_bytes(payload[: len(payload) // 2])
        zoo.clear_memory_cache()
        rebuilt = zoo.get_pretrained_bundle(kind="bird", num_concepts=5,
                                            seed=44, config=config)
        # the bad bytes moved aside for post-mortem, fresh cache in place
        assert list(tmp_path.glob("bundle-*.npz.corrupt*"))
        assert cache_file.exists()
        np.testing.assert_allclose(
            rebuilt.clip.state_dict()["logit_scale"],
            first.clip.state_dict()["logit_scale"], atol=1e-6)
        zoo.clear_memory_cache()

    def test_cache_write_has_no_temp_litter(self, config, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        zoo.clear_memory_cache()
        zoo.get_pretrained_bundle(kind="bird", num_concepts=5, seed=44,
                                  config=config)
        assert not list(tmp_path.glob("*.tmp-*"))
        zoo.clear_memory_cache()


class TestPersistenceFaults:
    @pytest.fixture()
    def fitted(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        return matcher

    def test_truncated_archive_raises_typed_error(self, fitted, tiny_bundle,
                                                  tiny_dataset, tmp_path):
        path = save_matcher(fitted, tmp_path / "m.npz")
        path.write_bytes(path.read_bytes()[: 64])
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        with pytest.raises(CorruptArtifactError):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_garbage_archive_raises_typed_error(self, tiny_bundle,
                                                tiny_dataset, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"not an archive at all")
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        with pytest.raises(CorruptArtifactError):
            load_matcher(path, tiny_bundle, tiny_dataset.graph,
                         tiny_dataset.images, fresh)

    def test_missing_archive_stays_file_not_found(self, tiny_bundle,
                                                  tiny_dataset, tmp_path):
        fresh = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0))
        with pytest.raises(FileNotFoundError):
            load_matcher(tmp_path / "never.npz", tiny_bundle,
                         tiny_dataset.graph, tiny_dataset.images, fresh)

    def test_save_leaves_no_partial_archive_on_crash(self, fitted, tmp_path,
                                                     monkeypatch):
        import os

        def broken_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            save_matcher(fitted, tmp_path / "m.npz")
        monkeypatch.undo()
        assert not (tmp_path / "m.npz").exists()
        assert not list(tmp_path.glob("*.tmp-*"))
