"""Standalone kill/resume smoke test (run by CI, not pytest).

Drives the real failure end-to-end across process boundaries:

1. a *victim* process fits 4 soft-prompt epochs with checkpointing and
   SIGKILLs itself between epochs 2 and 3 — a genuine ``kill -9``, no
   cleanup handlers run;
2. a fresh process resumes from the surviving checkpoints and finishes;
3. another fresh process runs the same fit uninterrupted;
4. the two ``score()`` matrices must be **bit-identical**.

Usage::

    PYTHONPATH=src python tests/faults/kill_resume_smoke.py
"""

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

SOFT = dict(prompt="soft", epochs=4, lr=1e-3, seed=3)


def _setup():
    from repro.clip.pretrain import PretrainConfig
    from repro.clip.zoo import get_pretrained_bundle
    from repro.datasets.generator import build_attribute_dataset

    config = PretrainConfig(epochs=20, batch_size=16,
                            captions_per_concept=6, seed=7)
    bundle = get_pretrained_bundle(kind="bird", num_concepts=16, seed=7,
                                   config=config)
    dataset = build_attribute_dataset(bundle.universe, name="tiny-cub",
                                      concept_indices=range(10),
                                      images_per_concept=2, seed=7)
    return bundle, dataset


def run_victim(checkpoint_dir: str) -> None:
    from repro.core import CrossEM, CrossEMConfig

    bundle, dataset = _setup()
    original = CrossEM._refresh_pseudo_labels
    calls = {"n": 0}

    def dying_refresh(self):
        calls["n"] += 1
        if calls["n"] == 3:  # epoch 3 is starting: die between epochs
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self)

    CrossEM._refresh_pseudo_labels = dying_refresh
    CrossEM(bundle, CrossEMConfig(**SOFT)).fit(
        dataset.graph, dataset.images, dataset.entity_vertices,
        checkpoint_dir=checkpoint_dir)
    raise SystemExit("victim survived: the kill never fired")


def run_scorer(out_path: str, resume_from=None) -> None:
    from repro.core import CrossEM, CrossEMConfig

    bundle, dataset = _setup()
    matcher = CrossEM(bundle, CrossEMConfig(**SOFT))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices,
                resume_from=resume_from)
    np.save(out_path, matcher.score())


def main() -> int:
    if len(sys.argv) > 1:
        mode = sys.argv[1]
        if mode == "victim":
            run_victim(sys.argv[2])
        elif mode == "resume":
            run_scorer(sys.argv[3], resume_from=sys.argv[2])
        elif mode == "full":
            run_scorer(sys.argv[2])
        else:
            raise SystemExit(f"unknown mode {mode!r}")
        return 0

    me = str(Path(__file__).resolve())
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        ckpt_dir = tmp / "ckpts"
        victim = subprocess.run([sys.executable, me, "victim",
                                 str(ckpt_dir)])
        if victim.returncode not in (-signal.SIGKILL, 128 + signal.SIGKILL):
            print(f"FAIL: victim exited {victim.returncode}, expected "
                  f"SIGKILL")
            return 1
        survivors = sorted(ckpt_dir.glob("ckpt-*.ckpt"))
        if not survivors:
            print("FAIL: no checkpoint survived the kill")
            return 1
        subprocess.run([sys.executable, me, "resume", str(ckpt_dir),
                        str(tmp / "resumed.npy")], check=True)
        subprocess.run([sys.executable, me, "full",
                        str(tmp / "full.npy")], check=True)
        resumed = np.load(tmp / "resumed.npy")
        full = np.load(tmp / "full.npy")
        if not np.array_equal(resumed, full):
            print("FAIL: resumed scores are not bit-identical to the "
                  "uninterrupted run")
            return 1
        print(f"PASS: killed -9 between epochs, resumed from "
              f"{survivors[-1].name}, scores bit-identical "
              f"({resumed.shape[0]}x{resumed.shape[1]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
