"""Fault injection against the REPROIX1 index shard.

Damage is split across the two verification tiers the way serving
relies on them: anything *structural* (truncation anywhere, torn
header, bad magic, length mismatch, future schema) must fail the lazy
open that the serve path uses; silent payload damage (bit flips) must
pass lazy but fail ``verify="full"``.  Every failure surfaces as the
one typed :class:`IndexShardCorruptError` — a
:class:`~repro.iosafe.CorruptArtifactError` — so the existing
quarantine machinery applies unchanged."""

import numpy as np
import pytest

from repro.index import (IVFPQConfig, IndexShardCorruptError, ShardReader,
                         build_ivfpq, load_index, save_index, write_shard)
from repro.iosafe import CorruptArtifactError, quarantine


@pytest.fixture(scope="module")
def shard_bytes(tmp_path_factory):
    rng = np.random.default_rng(5)
    points = rng.standard_normal((120, 16)).astype(np.float32)
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    index = build_ivfpq(points, IVFPQConfig(nlist=8, pq_m=4, seed=5))
    path = save_index(tmp_path_factory.mktemp("shard") / "good.ix", index)
    return path.read_bytes()


def damaged(tmp_path, blob):
    path = tmp_path / "damaged.ix"
    path.write_bytes(blob)
    return path


class TestLazyTierCatchesStructuralDamage:
    def test_truncation_at_every_region_fails_lazy_open(self, shard_bytes,
                                                        tmp_path):
        """Cut the file in the magic, the header length, the header
        JSON, and the payload — every cut must fail the *lazy* open
        (the tier serving uses), as a typed error."""
        total = len(shard_bytes)
        cuts = [4, 12, 40, total // 2, total - 1]
        for cut in cuts:
            path = damaged(tmp_path, shard_bytes[:cut])
            with pytest.raises(IndexShardCorruptError):
                ShardReader(path, verify="lazy")

    def test_bad_magic(self, shard_bytes, tmp_path):
        blob = b"NOTANIDX" + shard_bytes[8:]
        with pytest.raises(IndexShardCorruptError, match="magic"):
            ShardReader(damaged(tmp_path, blob))

    def test_garbage_header_length(self, shard_bytes, tmp_path):
        blob = shard_bytes[:8] + (2 ** 62).to_bytes(8, "little") \
            + shard_bytes[16:]
        with pytest.raises(IndexShardCorruptError, match="length"):
            ShardReader(damaged(tmp_path, blob))

    def test_appended_garbage_fails_length_check(self, shard_bytes,
                                                 tmp_path):
        path = damaged(tmp_path, shard_bytes + b"\x00" * 32)
        with pytest.raises(IndexShardCorruptError, match="mismatch"):
            ShardReader(path)

    def test_future_schema_is_refused(self, tmp_path):
        path = write_shard(tmp_path / "s.ix",
                           {"a": np.arange(4, dtype=np.float32)})
        blob = path.read_bytes()
        header_len = int.from_bytes(blob[8:16], "little")
        header = blob[16:16 + header_len].replace(
            b'"schema": 1', b'"schema": 9')
        assert header != blob[16:16 + header_len]
        path.write_bytes(blob[:16] + header + blob[16 + header_len:])
        with pytest.raises(IndexShardCorruptError, match="schema"):
            ShardReader(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardReader(tmp_path / "never.ix")


class TestFullTierCatchesBitRot:
    def flip_payload_bit(self, shard_bytes):
        header_len = int.from_bytes(shard_bytes[8:16], "little")
        data_start = 16 + header_len
        flip_at = data_start + (len(shard_bytes) - data_start) // 2
        blob = bytearray(shard_bytes)
        blob[flip_at] ^= 0x40
        return bytes(blob)

    def test_bitflip_passes_lazy_but_fails_full(self, shard_bytes,
                                                tmp_path):
        path = damaged(tmp_path, self.flip_payload_bit(shard_bytes))
        ShardReader(path, verify="lazy")  # structural tier can't see it
        with pytest.raises(IndexShardCorruptError, match="digest"):
            ShardReader(path, verify="full")

    def test_load_index_full_verify_rejects_bitflip(self, shard_bytes,
                                                    tmp_path):
        path = damaged(tmp_path, self.flip_payload_bit(shard_bytes))
        with pytest.raises(IndexShardCorruptError):
            load_index(path, verify="full")


class TestQuarantineAndTyping:
    def test_corrupt_shard_quarantines_like_any_artifact(self, shard_bytes,
                                                         tmp_path):
        path = damaged(tmp_path, shard_bytes[: len(shard_bytes) // 3])
        try:
            ShardReader(path)
        except CorruptArtifactError:
            moved = quarantine(path)
        assert moved is not None
        assert not path.exists()
        assert moved.name.startswith("damaged.ix.corrupt")

    def test_error_is_the_shared_corruption_type(self, shard_bytes,
                                                 tmp_path):
        path = damaged(tmp_path, shard_bytes[:20])
        with pytest.raises(CorruptArtifactError):
            ShardReader(path)

    def test_wrong_kind_is_typed_not_keyerror(self, tmp_path):
        """A valid shard that is not an index (e.g. a bare embedding
        store) must fail load_index with the typed error."""
        path = write_shard(tmp_path / "s.ix",
                           {"a": np.arange(6, dtype=np.float32)},
                           meta={"kind": "something-else"})
        with pytest.raises(IndexShardCorruptError, match="kind"):
            load_index(path)
