"""IVF-PQ search contracts on a seeded clustered world.

The load-bearing guarantees: an exhaustive probe is *bit-identical* to
brute force (ids and scores), probed search returns exact scores in
deterministic ``(-score, id)`` order with real ids only, recall@10
clears a floor on clustered data, and a shard round-trip changes
nothing."""

import numpy as np
import pytest

from repro.index import (IVFPQConfig, IVFPQIndex, build_ivfpq,
                         deterministic_topk_rows, load_index, save_index)


def clustered_world(num_points, dim, num_centers, num_queries, seed=0,
                    noise=0.08):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_centers, dim)).astype(np.float32)
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    owner = rng.integers(0, num_centers, size=num_points)
    points = centers[owner] + noise * rng.standard_normal(
        (num_points, dim)).astype(np.float32)
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    queries = centers[rng.integers(0, num_centers, size=num_queries)] \
        + 0.06 * rng.standard_normal((num_queries, dim)).astype(np.float32)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return np.ascontiguousarray(points), np.ascontiguousarray(queries)


def brute_topk(points, queries, k):
    scores = queries @ points.T
    ids = deterministic_topk_rows(scores, k)
    return ids, np.take_along_axis(scores, ids, axis=1)


@pytest.fixture(scope="module")
def world():
    return clustered_world(3000, 32, 48, 24)


@pytest.fixture(scope="module")
def built(world):
    points, _ = world
    return build_ivfpq(points, IVFPQConfig(nlist=32, nprobe=4, pq_m=8,
                                           refine=8, seed=1))


class TestBuild:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            build_ivfpq(np.zeros((1, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            build_ivfpq(np.zeros(8, dtype=np.float32))

    def test_build_is_deterministic_under_seed(self, world):
        points, queries = world
        config = IVFPQConfig(nlist=16, pq_m=4, seed=3)
        a = build_ivfpq(points, config)
        b = build_ivfpq(points, config)
        ra = a.search(queries, 5)
        rb = b.search(queries, 5)
        np.testing.assert_array_equal(ra.ids, rb.ids)
        np.testing.assert_array_equal(ra.scores, rb.scores)

    def test_inverted_lists_partition_all_vectors(self, built, world):
        points, _ = world
        assert built.list_offsets[0] == 0
        assert built.list_offsets[-1] == len(points)
        assert sorted(built.list_ids.tolist()) == list(range(len(points)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IVFPQConfig(nlist=0)
        with pytest.raises(ValueError):
            IVFPQConfig(pq_bits=9)
        with pytest.raises(ValueError):
            IVFPQConfig(refine=0)


class TestExhaustiveFallback:
    def test_nprobe_at_nlist_is_bit_identical_to_brute(self, built, world):
        points, queries = world
        want_ids, want_scores = brute_topk(points, queries, 10)
        result = built.search(queries, 10, nprobe=built.nlist)
        assert result.exhaustive
        np.testing.assert_array_equal(result.ids, want_ids)
        np.testing.assert_array_equal(result.scores, want_scores)

    def test_nprobe_beyond_nlist_also_exhaustive(self, built, world):
        points, queries = world
        want_ids, _ = brute_topk(points, queries, 3)
        result = built.search(queries, 3, nprobe=built.nlist * 4)
        assert result.exhaustive
        np.testing.assert_array_equal(result.ids, want_ids)

    def test_exhaustive_recall_proxy_is_one(self, built, world):
        _, queries = world
        assert built.search(queries, 5, nprobe=built.nlist).recall_proxy \
            == pytest.approx(1.0)


class TestProbedSearch:
    def test_returned_scores_are_full_precision(self, built, world):
        """Shortlist membership is approximate; returned scores never
        are — each is the full-precision inner product (up to the BLAS
        kernel's last-ulp rounding; ADC estimates would be off by
        orders of magnitude more)."""
        points, queries = world
        result = built.search(queries, 10)
        exact = queries @ points.T
        got = result.scores
        want = np.take_along_axis(exact, result.ids, axis=1)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_rows_are_in_deterministic_order(self, built, world):
        _, queries = world
        result = built.search(queries, 10)
        for q in range(len(queries)):
            pairs = list(zip(-result.scores[q], result.ids[q]))
            assert pairs == sorted(pairs)

    def test_recall_at_10_clears_floor_on_clustered_world(self, built,
                                                          world):
        points, queries = world
        oracle, _ = brute_topk(points, queries, 10)
        result = built.search(queries, 10)
        hits = sum(len(set(oracle[q].tolist())
                       & set(result.ids[q].tolist()))
                   for q in range(len(queries)))
        recall = hits / oracle.size
        assert recall >= 0.90, f"recall@10 {recall:.3f} below floor"

    def test_underfilled_probes_escalate_to_exact(self, world):
        """Probing one cell of a tiny index can expose fewer than k
        candidates; such queries must escalate to an exact scan
        instead of returning -1 padding."""
        points, queries = world
        small = build_ivfpq(points[:40], IVFPQConfig(nlist=32, pq_m=4,
                                                     refine=1, seed=2))
        result = small.search(queries, 5, nprobe=1)
        assert (result.ids >= 0).all()
        escalated = np.flatnonzero(result.probes == small.nlist)
        assert len(escalated), "no query escalated — world too clumped"
        want_ids, want_scores = brute_topk(points[:40], queries, 5)
        np.testing.assert_array_equal(result.ids[escalated],
                                      want_ids[escalated])
        np.testing.assert_array_equal(result.scores[escalated],
                                      want_scores[escalated])

    def test_empty_lists_are_harmless(self, world):
        """nlist close to n leaves cells empty after coarse assignment;
        probing them must neither crash nor pad the output."""
        points, queries = world
        tiny = build_ivfpq(points[:50], IVFPQConfig(nlist=48, pq_m=4,
                                                    refine=4, seed=0))
        sizes = np.diff(tiny.list_offsets)
        result = tiny.search(queries, 3, nprobe=8)
        assert (result.ids >= 0).all()
        assert np.isfinite(result.scores).all()

    def test_k_larger_than_count_clamps(self, built, world):
        points, queries = world
        small = build_ivfpq(points[:12], IVFPQConfig(nlist=4, pq_m=4,
                                                     seed=0))
        result = small.search(queries[:3], 50)
        assert result.ids.shape == (3, 12)
        assert (result.ids >= 0).all()

    def test_single_1d_query(self, built, world):
        _, queries = world
        result = built.search(queries[0], 5)
        assert result.ids.shape == (1, 5)

    def test_more_probes_never_lose_recall(self, built, world):
        points, queries = world
        oracle, _ = brute_topk(points, queries, 10)
        last = -1.0
        for nprobe in (1, 4, 16, 32):
            result = built.search(queries, 10, nprobe=nprobe)
            hits = sum(len(set(oracle[q].tolist())
                           & set(result.ids[q].tolist()))
                       for q in range(len(queries)))
            recall = hits / oracle.size
            assert recall >= last - 1e-9
            last = recall


class TestPersistence:
    def test_save_load_round_trip_is_identical(self, built, world, tmp_path):
        _, queries = world
        path = save_index(tmp_path / "w.ix", built, meta={"note": "t"})
        loaded = load_index(path, verify="full")
        assert loaded.meta.get("note") == "t"
        a = built.search(queries, 10)
        b = loaded.search(queries, 10)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_load_nprobe_override(self, built, tmp_path):
        path = save_index(tmp_path / "w.ix", built)
        assert load_index(path, nprobe=17).nprobe == 17

    def test_budgeted_load_serves_without_materializing(self, built, world,
                                                        tmp_path):
        """A 1 KiB budget is far below the embedding matrix — search
        must still answer (shortlist rows only touch mapped pages)."""
        _, queries = world
        path = save_index(tmp_path / "w.ix", built)
        loaded = load_index(path, memory_budget_bytes=1024)
        a = built.search(queries, 10)
        b = loaded.search(queries, 10)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_budgeted_exhaustive_fallback_still_works(self, built, world,
                                                      tmp_path):
        """Exhaustive scans stream the memmap — a tight budget must not
        break the nprobe >= nlist path either."""
        points, queries = world
        path = save_index(tmp_path / "w.ix", built)
        loaded = load_index(path, memory_budget_bytes=1024)
        want_ids, _ = brute_topk(points, queries, 5)
        result = loaded.search(queries, 5, nprobe=loaded.nlist)
        np.testing.assert_array_equal(result.ids, want_ids)

    def test_describe_shapes(self, built):
        info = built.describe()
        assert info["kind"] == "ivfpq"
        assert info["vectors"] == built.count
        assert info["nlist"] == built.nlist
