"""Deterministic top-k: the ``(-score, id)`` total order every
retrieval path (brute GEMM, ADC shortlist, exact re-rank) must agree
on.  Ties are the whole point — argpartition alone breaks them by
pivot luck, which would make the brute and index paths disagree on
identical scores."""

import numpy as np
import pytest

from repro.index import deterministic_topk, deterministic_topk_rows


def reference_topk(scores, k):
    """The obviously-correct full sort."""
    order = sorted(range(len(scores)), key=lambda i: (-scores[i], i))
    return np.asarray(order[:k], dtype=np.int64)


class TestDeterministicTopk:
    def test_matches_full_sort_on_random_scores(self, rng):
        for _ in range(20):
            scores = rng.standard_normal(50).astype(np.float32)
            k = int(rng.integers(1, 12))
            np.testing.assert_array_equal(
                deterministic_topk(scores, k), reference_topk(scores, k))

    def test_ties_break_by_ascending_index(self):
        scores = np.asarray([1.0, 3.0, 3.0, 2.0, 3.0], dtype=np.float32)
        np.testing.assert_array_equal(deterministic_topk(scores, 3),
                                      [1, 2, 4])

    def test_all_tied_returns_first_k_indices(self):
        scores = np.full(10, 0.5, dtype=np.float32)
        np.testing.assert_array_equal(deterministic_topk(scores, 4),
                                      [0, 1, 2, 3])

    def test_tie_straddling_the_kth_position(self):
        """The tie class of the kth value must be re-sorted, not taken
        in partition order."""
        scores = np.asarray([2.0, 1.0, 1.0, 1.0, 0.0], dtype=np.float32)
        np.testing.assert_array_equal(deterministic_topk(scores, 2),
                                      [0, 1])

    def test_k_at_least_n_is_a_full_sort(self):
        scores = np.asarray([0.1, 0.3, 0.2], dtype=np.float32)
        for k in (3, 5):
            np.testing.assert_array_equal(deterministic_topk(scores, k),
                                          [1, 2, 0])

    def test_k_zero_is_empty(self):
        out = deterministic_topk(np.asarray([1.0, 2.0]), 0)
        assert out.shape == (0,)

    def test_duplicated_input_is_deterministic_across_calls(self, rng):
        scores = rng.standard_normal(64).astype(np.float32)
        scores[10:20] = scores[30]  # a fat tie class
        first = deterministic_topk(scores, 15)
        for _ in range(5):
            np.testing.assert_array_equal(
                deterministic_topk(scores.copy(), 15), first)


class TestRows:
    def test_rows_match_per_row_calls(self, rng):
        scores = rng.standard_normal((8, 30)).astype(np.float32)
        scores[:, 5] = scores[:, 17]  # plant ties in every row
        rows = deterministic_topk_rows(scores, 6)
        assert rows.shape == (8, 6)
        for r in range(8):
            np.testing.assert_array_equal(rows[r],
                                          deterministic_topk(scores[r], 6))

    def test_empty_batch(self):
        out = deterministic_topk_rows(np.zeros((0, 5), dtype=np.float32), 3)
        assert out.shape == (0, 3)
