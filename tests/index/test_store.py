"""REPROIX1 shard container and the memory-mapped embedding store.

The contract under test: sections round-trip bit-exactly through the
shard, readers hand out memmap views (not copies), and the budgeted
store serves a repository larger than its memory budget by slicing the
map instead of materializing it."""

import numpy as np
import pytest

from repro.index import (EmbeddingStore, MemoryBudgetExceeded, ShardReader,
                         dequantize_int8, quantize_int8, write_shard)


@pytest.fixture()
def sections(rng):
    return {
        "alpha": rng.standard_normal((40, 16)).astype(np.float32),
        "beta": rng.integers(0, 255, size=(40, 8)).astype(np.uint8),
        "gamma": np.arange(41, dtype=np.int64),
    }


class TestShardRoundtrip:
    def test_sections_round_trip_bit_exact(self, sections, tmp_path):
        path = write_shard(tmp_path / "x.ix", sections,
                           meta={"kind": "test", "n": 3})
        reader = ShardReader(path, verify="full")
        assert reader.meta == {"kind": "test", "n": 3}
        assert reader.section_names() == sorted(sections)
        for name, array in sections.items():
            got = reader.section(name)
            assert got.dtype == array.dtype
            np.testing.assert_array_equal(np.asarray(got), array)

    def test_sections_are_memmap_views(self, sections, tmp_path):
        path = write_shard(tmp_path / "x.ix", sections)
        reader = ShardReader(path)
        assert isinstance(reader.section("alpha"), np.memmap)

    def test_empty_sections_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_shard(tmp_path / "x.ix", {})

    def test_offsets_are_aligned(self, sections, tmp_path):
        path = write_shard(tmp_path / "x.ix", sections)
        reader = ShardReader(path)
        for name in reader.section_names():
            assert reader.section_entry(name)["offset"] % 64 == 0


class TestInt8Quantization:
    def test_round_trip_error_is_bounded_by_scale(self, rng):
        emb = rng.standard_normal((30, 24)).astype(np.float32)
        codes, scales = quantize_int8(emb)
        assert codes.dtype == np.int8
        back = dequantize_int8(codes, scales)
        # worst case is half a quantization step per component
        assert np.max(np.abs(back - emb) - scales[:, None] / 2.0) < 1e-6

    def test_zero_vector_stays_zero(self):
        emb = np.zeros((2, 8), dtype=np.float32)
        codes, scales = quantize_int8(emb)
        assert scales.tolist() == [0.0, 0.0]
        np.testing.assert_array_equal(dequantize_int8(codes, scales), emb)


class TestEmbeddingStore:
    def test_take_matches_source_rows(self, rng, tmp_path):
        emb = rng.standard_normal((64, 12)).astype(np.float32)
        store = EmbeddingStore.open(
            EmbeddingStore.create(tmp_path / "e.ix", emb))
        rows = np.asarray([3, 0, 63, 3])
        np.testing.assert_array_equal(store.take(rows), emb[rows])

    def test_int8_precision_tier(self, rng, tmp_path):
        emb = rng.standard_normal((16, 12)).astype(np.float32)
        store = EmbeddingStore.open(
            EmbeddingStore.create(tmp_path / "e.ix", emb))
        approx = store.take(np.arange(16), precision="int8")
        assert np.max(np.abs(approx - emb)) < np.abs(emb).max() / 64

    def test_budget_blocks_materialize_but_not_take(self, rng, tmp_path):
        """A repository larger than the memory budget keeps serving
        row reads — only whole-matrix inflation is refused."""
        emb = rng.standard_normal((256, 32)).astype(np.float32)  # 32 KiB
        store = EmbeddingStore.open(
            EmbeddingStore.create(tmp_path / "e.ix", emb),
            memory_budget_bytes=1024)
        with pytest.raises(MemoryBudgetExceeded):
            store.materialize()
        np.testing.assert_array_equal(store.take(np.asarray([7, 250])),
                                      emb[[7, 250]])

    def test_budget_large_enough_materializes(self, rng, tmp_path):
        emb = rng.standard_normal((8, 4)).astype(np.float32)
        store = EmbeddingStore.open(
            EmbeddingStore.create(tmp_path / "e.ix", emb),
            memory_budget_bytes=1 << 20)
        np.testing.assert_array_equal(store.materialize(), emb)
