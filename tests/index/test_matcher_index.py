"""Matcher ↔ index integration: the exactness and determinism seams.

``CrossEM.score`` stays the golden reference; this suite pins the two
things the index route must preserve around it — deterministic top-k
under score ties (duplicate images score bit-identically, so pivot-luck
selection would flap between runs and between paths), and matching-set
equality when the index probes exhaustively."""

import numpy as np
import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.index import IVFPQConfig


@pytest.fixture(scope="module")
def tied_matcher(tiny_bundle, tiny_dataset):
    """A fitted matcher whose repository contains duplicated images —
    every duplicate pair produces exact score ties for every vertex."""
    images = list(tiny_dataset.images) + list(tiny_dataset.images[:6])
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0,
                                                 seed=11))
    matcher.fit(tiny_dataset.graph, images, tiny_dataset.entity_vertices)
    return matcher


class TestDeterministicTopKUnderTies:
    def test_planted_ties_break_by_image_position(self, tied_matcher,
                                                  monkeypatch):
        """Exact ties (shadowed score matrix — duplicated *images* only
        tie up to BLAS batch blocking) resolve toward the earlier
        repository position in both score_topk and match_pairs."""
        n = len(tied_matcher.images)
        row = np.full(n, -1.0, dtype=np.float32)
        row[[0, 1, 3, 6]] = 5.0  # a four-way tie for the top
        row[2] = 4.0
        crafted = np.tile(row, (2, 1))
        monkeypatch.setattr(tied_matcher, "score",
                            lambda vertex_ids=None: crafted)
        vertices = tied_matcher.vertex_ids[:2]
        ids, scores = tied_matcher.score_topk(vertices, top_k=5)
        np.testing.assert_array_equal(ids, np.tile([0, 1, 3, 6, 2], (2, 1)))
        np.testing.assert_array_equal(scores,
                                      np.tile([5, 5, 5, 5, 4], (2, 1)))
        pairs = tied_matcher.match_pairs(vertices, top_k=4)
        want_images = {tied_matcher.images[c].image_id for c in (0, 1, 3, 6)}
        assert pairs == {(v, i) for v in vertices for i in want_images}

    def test_brute_topk_is_the_reference_total_order(self, tied_matcher):
        """score_topk's brute path reproduces the ``(-score, position)``
        sort of the golden score matrix, end to end."""
        ids, scores = tied_matcher.score_topk(top_k=len(tied_matcher.images))
        full = tied_matcher.score()
        for row in range(len(ids)):
            pairs = list(zip(-scores[row], ids[row]))
            assert pairs == sorted(pairs)
            np.testing.assert_array_equal(np.sort(ids[row]),
                                          np.arange(len(tied_matcher.images)))
            np.testing.assert_array_equal(scores[row], full[row][ids[row]])

    def test_match_pairs_stable_across_calls(self, tied_matcher):
        first = tied_matcher.match_pairs(top_k=3)
        for _ in range(3):
            assert tied_matcher.match_pairs(top_k=3) == first

    def test_exhaustive_index_matches_brute_exactly(self, tied_matcher):
        """nprobe >= nlist routes through the index yet must reproduce
        the brute matching set on a tie-riddled repository."""
        brute = tied_matcher.match_pairs(top_k=3)
        tied_matcher.build_index(IVFPQConfig(nlist=4, nprobe=4, pq_m=4,
                                             refine=8, seed=0))
        try:
            assert tied_matcher.match_pairs(top_k=3) == brute
        finally:
            tied_matcher.detach_index()

    def test_score_topk_paths_agree_exhaustively(self, tied_matcher):
        want_ids, want_scores = tied_matcher.score_topk(top_k=5)
        tied_matcher.build_index(IVFPQConfig(nlist=4, nprobe=4, pq_m=4,
                                             refine=8, seed=0))
        try:
            got_ids, got_scores = tied_matcher.score_topk(top_k=5)
        finally:
            tied_matcher.detach_index()
        np.testing.assert_array_equal(got_ids, want_ids)
        np.testing.assert_array_equal(got_scores, want_scores)


class TestAttachValidation:
    def test_attach_rejects_wrong_size_index(self, tied_matcher,
                                             tiny_dataset, tiny_bundle):
        other = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0,
                                                   seed=1))
        other.fit(tiny_dataset.graph, tiny_dataset.images,
                  tiny_dataset.entity_vertices)
        index = other.build_index(IVFPQConfig(nlist=4, pq_m=4, seed=0))
        other.detach_index()
        with pytest.raises(ValueError, match="vectors"):
            tied_matcher.attach_index(index)

    def test_detach_restores_brute(self, tied_matcher):
        index = tied_matcher.build_index(IVFPQConfig(nlist=4, pq_m=4,
                                                     seed=0))
        assert tied_matcher.search_index is index
        tied_matcher.detach_index()
        assert tied_matcher.search_index is None

    def test_score_untouched_by_attached_index(self, tied_matcher):
        """The golden reference must not notice the index at all."""
        before = tied_matcher.score()
        tied_matcher.build_index(IVFPQConfig(nlist=4, pq_m=4, seed=0))
        try:
            np.testing.assert_array_equal(tied_matcher.score(), before)
        finally:
            tied_matcher.detach_index()
