"""Autodiff engine tests: ops, broadcasting, graph traversal, gradcheck."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import _unbroadcast


def numeric_gradient(fn, array, eps=1e-3):
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        plus = fn(array)
        array[idx] = original - eps
        minus = fn(array)
        array[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build, array, tol=2e-2):
    """Compare autodiff gradient of build(Tensor) against finite diff."""
    tensor = nn.Tensor(array, requires_grad=True)
    build(tensor).backward()
    numeric = numeric_gradient(lambda a: build(nn.Tensor(a)).item(),
                               array.copy())
    assert tensor.grad is not None
    np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=tol)


@pytest.fixture()
def matrix(rng):
    return rng.standard_normal((3, 4)).astype(np.float32)


class TestBasics:
    def test_creation_casts_to_float32(self):
        assert nn.Tensor([1, 2, 3]).data.dtype == np.float32
        assert nn.Tensor(np.zeros(2, dtype=np.float64)).data.dtype == np.float32

    def test_requires_grad_respects_no_grad(self):
        with nn.no_grad():
            t = nn.Tensor([1.0], requires_grad=True)
        assert not t.requires_grad
        assert nn.is_grad_enabled()

    def test_backward_requires_scalar(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_detach_breaks_graph(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        out = (t * 2).detach()
        assert not out.requires_grad

    def test_repr_and_shape(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3


class TestGradients:
    def test_add_mul(self, matrix):
        check_gradient(lambda t: ((t + 2.0) * t).sum(), matrix)

    def test_sub_div(self, matrix):
        check_gradient(lambda t: (t / 2.0 - t).sum(), matrix)

    def test_pow(self, matrix):
        check_gradient(lambda t: (t ** 2).sum(), matrix)

    def test_matmul(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        ta = nn.Tensor(a, requires_grad=True)
        tb = nn.Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numeric_gradient(
                lambda x: float((x @ b).sum()), a.copy()), atol=2e-2)
        np.testing.assert_allclose(
            tb.grad, numeric_gradient(
                lambda x: float((a @ x).sum()), b.copy()), atol=2e-2)

    def test_matmul_vector_cases(self, rng):
        a = rng.standard_normal(4).astype(np.float32)
        m = rng.standard_normal((4, 3)).astype(np.float32)
        ta = nn.Tensor(a, requires_grad=True)
        (ta @ nn.Tensor(m)).sum().backward()
        np.testing.assert_allclose(ta.grad, m.sum(axis=1), atol=1e-5)
        tm = nn.Tensor(m, requires_grad=True)
        (nn.Tensor(a) @ tm).sum().backward()
        np.testing.assert_allclose(tm.grad, np.tile(a[:, None], (1, 3)),
                                   atol=1e-5)

    def test_batched_matmul(self, rng):
        a = rng.standard_normal((2, 3, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4, 5)).astype(np.float32)
        ta = nn.Tensor(a, requires_grad=True)
        tb = nn.Tensor(b, requires_grad=True)
        ((ta @ tb) ** 2).sum().backward()
        assert ta.grad.shape == a.shape
        assert tb.grad.shape == b.shape

    def test_nonlinearities(self, matrix):
        check_gradient(lambda t: t.tanh().sum(), matrix)
        check_gradient(lambda t: t.sigmoid().sum(), matrix)
        check_gradient(lambda t: t.exp().sum(), matrix)
        check_gradient(lambda t: (t * t + 1.0).log().sum(), matrix)
        check_gradient(lambda t: t.relu().sum(), matrix + 0.1)
        check_gradient(lambda t: t.abs().sum(), matrix + 0.1)

    def test_reductions(self, matrix):
        check_gradient(lambda t: t.sum(axis=0).sum(), matrix)
        check_gradient(lambda t: t.mean(axis=1).sum(), matrix)
        check_gradient(lambda t: t.sum(axis=1, keepdims=True).sum(), matrix)
        check_gradient(lambda t: t.max(axis=1).sum(), matrix)

    def test_shape_ops(self, matrix):
        check_gradient(lambda t: t.reshape(4, 3).sum(), matrix)
        check_gradient(lambda t: t.transpose().sum(), matrix)
        check_gradient(lambda t: t.swapaxes(0, 1).sum(), matrix)

    def test_getitem(self, matrix):
        check_gradient(lambda t: t[1:, :2].sum(), matrix)

    def test_fancy_indexing_accumulates(self):
        t = nn.Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        rows = np.asarray([0, 0, 2])
        t[rows].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])

    def test_clip(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        t.clip(-0.5, 0.5).sum().backward()
        inside = (matrix >= -0.5) & (matrix <= 0.5)
        np.testing.assert_allclose(t.grad, inside.astype(np.float32))

    def test_shared_subexpression(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        y = t * 2.0
        (y + y).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(matrix, 4.0))

    def test_grad_accumulates_across_backwards(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        (t * 1.0).sum().backward()
        (t * 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(matrix, 2.0))

    def test_broadcasting_gradient(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float32)
        tb = nn.Tensor(b, requires_grad=True)
        (nn.Tensor(a) * tb).sum().backward()
        np.testing.assert_allclose(tb.grad, a.sum(axis=0), atol=1e-5)


class TestConcatStack:
    def test_concat_gradient(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = rng.standard_normal((4, 3)).astype(np.float32)
        ta = nn.Tensor(a, requires_grad=True)
        tb = nn.Tensor(b, requires_grad=True)
        out = nn.concat([ta, tb], axis=0)
        assert out.shape == (6, 3)
        (out * 2).sum().backward()
        np.testing.assert_allclose(ta.grad, np.full_like(a, 2.0))
        np.testing.assert_allclose(tb.grad, np.full_like(b, 2.0))

    def test_stack_gradient(self, rng):
        a = rng.standard_normal(3).astype(np.float32)
        ta = nn.Tensor(a, requires_grad=True)
        out = nn.stack([ta, ta], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(ta.grad, np.full_like(a, 2.0))


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert _unbroadcast(g, (3, 4)).shape == (3, 4)

    def test_leading_dims(self):
        g = np.ones((2, 3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 4)),
                                   np.full((3, 4), 2.0))

    def test_kept_ones(self):
        g = np.ones((3, 4))
        np.testing.assert_allclose(_unbroadcast(g, (3, 1)),
                                   np.full((3, 1), 4.0))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=2, max_size=12))
def test_property_sum_gradient_is_ones(values):
    array = np.asarray(values, dtype=np.float32)
    t = nn.Tensor(array, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(array))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-2, 2), min_size=2, max_size=8),
       st.lists(st.floats(-2, 2), min_size=2, max_size=8))
def test_property_addition_commutes_gradients(left, right):
    n = min(len(left), len(right))
    a = np.asarray(left[:n], dtype=np.float32)
    b = np.asarray(right[:n], dtype=np.float32)
    ta = nn.Tensor(a, requires_grad=True)
    tb = nn.Tensor(b, requires_grad=True)
    (ta * tb).sum().backward()
    np.testing.assert_allclose(ta.grad, b, atol=1e-6)
    np.testing.assert_allclose(tb.grad, a, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5))
def test_property_tanh_gradcheck(n, m):
    rng = np.random.default_rng(n * 10 + m)
    array = rng.standard_normal((n, m)).astype(np.float32)
    check_gradient(lambda t: (t.tanh() ** 2).sum(), array)
