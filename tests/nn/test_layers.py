"""Tests for the module system and basic layers."""

import numpy as np
import pytest

from repro import nn


class TestModule:
    def test_parameter_discovery_deduplicates(self):
        linear = nn.Linear(3, 3, rng=0)

        class Shared(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = linear
                self.b = linear

        params = list(Shared().parameters())
        assert len(params) == 2  # weight + bias once

    def test_parameters_in_lists(self):
        model = nn.Sequential(nn.Linear(2, 3, rng=0), nn.Linear(3, 1, rng=0))
        assert len(list(model.parameters())) == 4

    def test_freeze_excludes_from_parameters(self):
        model = nn.Linear(2, 2, rng=0)
        model.freeze()
        assert list(model.parameters()) == []

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5, rng=0))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = nn.Linear(2, 2, rng=0)
        out = model(nn.Tensor(np.ones((1, 2), dtype=np.float32)))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.MLP([4, 8, 2], rng=1)
        b = nn.MLP([4, 8, 2], rng=2)
        b.load_state_dict(a.state_dict())
        x = nn.Tensor(np.ones((1, 4), dtype=np.float32))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy(), atol=1e-6)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Linear(2, 2, rng=0)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(2, 2, rng=0)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters(self):
        model = nn.Linear(3, 4, rng=0)
        assert model.num_parameters() == 3 * 4 + 4


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(5, 3, rng=0)
        out = layer(nn.Tensor(rng.standard_normal((7, 5)).astype(np.float32)))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(2, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_matches_manual(self, rng):
        layer = nn.Linear(3, 2, rng=0)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).numpy(), expected,
                                   atol=1e-6)


class TestEmbedding:
    def test_lookup(self):
        table = nn.Embedding(10, 4, rng=0)
        out = table(np.asarray([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.numpy()[0, 0], table.weight.data[1])

    def test_out_of_range_raises(self):
        table = nn.Embedding(3, 2, rng=0)
        with pytest.raises(IndexError):
            table(np.asarray([5]))

    def test_gradient_accumulates_per_id(self):
        table = nn.Embedding(4, 2, rng=0)
        out = table(np.asarray([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(table.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(table.weight.grad[0], [0.0, 0.0])


class TestMLP:
    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_hidden_relu_applied(self):
        mlp = nn.MLP([2, 3, 1], rng=0)
        # 2 Linear layers + 1 ReLU
        assert len(mlp.layers) == 3

    def test_forward_shape(self, rng):
        mlp = nn.MLP([4, 8, 8, 2], rng=0)
        out = mlp(nn.Tensor(rng.standard_normal((5, 4)).astype(np.float32)))
        assert out.shape == (5, 2)


class TestLayerNormModule:
    def test_parameters_and_shape(self, rng):
        layer = nn.LayerNorm(6)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        assert layer(nn.Tensor(x)).shape == (2, 6)
        assert len(list(layer.parameters())) == 2
