"""Optimizer tests: convergence, weight decay, clipping."""

import numpy as np
import pytest

from repro import nn


def quadratic_param():
    return nn.Parameter(np.asarray([5.0, -3.0], dtype=np.float32))


def minimize(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return np.abs(param.data).max()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimize(nn.SGD([p], lr=0.1), p) < 1e-3

    def test_momentum_accelerates(self):
        plain, momentum = quadratic_param(), quadratic_param()
        final_plain = minimize(nn.SGD([plain], lr=0.01), plain, steps=50)
        final_momentum = minimize(nn.SGD([momentum], lr=0.01, momentum=0.9),
                                  momentum, steps=50)
        assert final_momentum < final_plain

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert minimize(nn.Adam([p], lr=0.1), p) < 1e-2

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        q = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = nn.Adam([p, q], lr=0.1)
        optimizer.zero_grad()
        (p * p).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(q.data, [1.0])


class TestAdamW:
    def test_weight_decay_shrinks_unused_weights(self):
        p = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = nn.AdamW([p], lr=0.1, weight_decay=0.1)
        for _ in range(10):
            optimizer.zero_grad()
            (p * 0.0).sum().backward()
            optimizer.step()
        assert abs(p.data[0]) < 1.0

    def test_decay_zero_matches_adam(self):
        a, b = quadratic_param(), quadratic_param()
        opt_a = nn.Adam([a], lr=0.05)
        opt_b = nn.AdamW([b], lr=0.05, weight_decay=0.0)
        for _ in range(20):
            for opt, p in ((opt_a, a), (opt_b, b)):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
        np.testing.assert_allclose(a.data, b.data, atol=1e-6)


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.asarray([3.0, 4.0], dtype=np.float32)
        total = nn.clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_no_clip_when_below(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.asarray([0.3, 0.4], dtype=np.float32)
        nn.clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
