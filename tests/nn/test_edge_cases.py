"""Edge cases and failure injection across the nn substrate."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


class TestNoGradNesting:
    def test_nested_contexts_restore(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
            with nn.no_grad():
                assert not nn.is_grad_enabled()
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_exception_inside_no_grad_restores(self):
        with pytest.raises(RuntimeError):
            with nn.no_grad():
                raise RuntimeError("boom")
        assert nn.is_grad_enabled()

    def test_ops_inside_no_grad_have_no_parents(self):
        t = nn.Tensor([1.0, 2.0], requires_grad=True)
        with nn.no_grad():
            out = t * 2 + 1
        assert not out.requires_grad
        assert out._backward is None


class TestNumericalEdges:
    def test_pow_non_scalar_exponent_rejected(self):
        t = nn.Tensor([1.0])
        with pytest.raises(TypeError):
            t ** nn.Tensor([2.0])

    def test_division_by_tensor(self):
        a = nn.Tensor([4.0], requires_grad=True)
        (2.0 / a).backward(np.asarray([1.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [-2.0 / 16.0])

    def test_rsub(self):
        a = nn.Tensor([1.0], requires_grad=True)
        (3.0 - a).backward(np.asarray([1.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_sqrt_gradient(self):
        a = nn.Tensor([4.0], requires_grad=True)
        a.sqrt().backward(np.asarray([1.0], dtype=np.float32))
        np.testing.assert_allclose(a.grad, [0.25])

    def test_tiny_values_stay_finite(self):
        t = nn.Tensor(np.full(4, 1e-30, dtype=np.float32), requires_grad=True)
        out = F.l2_normalize(t.reshape(1, 4))
        out.sum().backward()
        assert np.isfinite(out.numpy()).all()
        assert np.isfinite(t.grad).all()

    def test_softmax_single_column(self):
        out = F.softmax(nn.Tensor([[3.0]])).numpy()
        np.testing.assert_allclose(out, [[1.0]])


class TestModuleEdges:
    def test_sequential_empty_is_identity(self):
        model = nn.Sequential()
        x = nn.Tensor(np.ones(3, dtype=np.float32))
        assert model(x) is x

    def test_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(1)

    def test_embedding_empty_ids(self):
        table = nn.Embedding(4, 2, rng=0)
        out = table(np.asarray([], dtype=np.int64))
        assert out.shape == (0, 2)

    def test_transformer_min_sequence(self, rng):
        encoder = nn.TransformerEncoder(8, depth=1, num_heads=2, rng=0)
        x = nn.Tensor(rng.standard_normal((1, 1, 8)).astype(np.float32))
        assert encoder(x).shape == (1, 1, 8)


class TestOptimizerEdges:
    def test_step_with_all_grads_none_is_noop(self):
        p = nn.Parameter(np.asarray([1.0], dtype=np.float32))
        optimizer = nn.AdamW([p], lr=0.1)
        optimizer.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_clip_empty_params(self):
        assert nn.clip_grad_norm([], max_norm=1.0) == 0.0

    def test_clip_zero_gradients(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        p.grad = np.zeros(2, dtype=np.float32)
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0
