"""Tests for differentiable functional building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F


@pytest.fixture()
def matrix(rng):
    return rng.standard_normal((4, 6)).astype(np.float32)


class TestSoftmax:
    def test_rows_sum_to_one(self, matrix):
        out = F.softmax(nn.Tensor(matrix)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_stability_with_large_logits(self):
        out = F.softmax(nn.Tensor([[1000.0, 1000.0]])).numpy()
        np.testing.assert_allclose(out, [[0.5, 0.5]], atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self, matrix):
        a = F.log_softmax(nn.Tensor(matrix)).numpy()
        b = np.log(F.softmax(nn.Tensor(matrix)).numpy())
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_gradient_flows(self, matrix):
        t = nn.Tensor(matrix, requires_grad=True)
        F.softmax(t).sum().backward()
        assert t.grad is not None
        # softmax rows sum to one, so d(sum)/dx is ~0
        np.testing.assert_allclose(t.grad, np.zeros_like(matrix), atol=1e-5)


class TestCrossEntropy:
    def test_matches_manual(self, matrix):
        targets = np.asarray([0, 1, 2, 3])
        loss = F.cross_entropy(nn.Tensor(matrix), targets).item()
        logp = matrix - np.log(np.exp(matrix).sum(axis=1, keepdims=True))
        manual = -logp[np.arange(4), targets].mean()
        assert loss == pytest.approx(manual, abs=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.eye(3, dtype=np.float32) * 50.0
        loss = F.cross_entropy(nn.Tensor(logits), np.arange(3)).item()
        assert loss < 1e-5

    def test_gradient_direction(self):
        logits = nn.Tensor(np.zeros((1, 3), dtype=np.float32),
                           requires_grad=True)
        F.cross_entropy(logits, np.asarray([1])).backward()
        assert logits.grad[0, 1] < 0  # push target logit up
        assert logits.grad[0, 0] > 0


class TestNormalize:
    def test_unit_norm(self, matrix):
        out = F.l2_normalize(nn.Tensor(matrix)).numpy()
        np.testing.assert_allclose(np.linalg.norm(out, axis=-1),
                                   np.ones(4), atol=1e-4)

    def test_zero_vector_is_safe(self):
        out = F.l2_normalize(nn.Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert np.isfinite(out.numpy()).all()

    def test_cosine_similarity_bounds(self, matrix, rng):
        other = rng.standard_normal((3, 6)).astype(np.float32)
        sims = F.cosine_similarity_matrix(nn.Tensor(matrix),
                                          nn.Tensor(other)).numpy()
        assert sims.shape == (4, 3)
        assert (sims <= 1.0 + 1e-5).all() and (sims >= -1.0 - 1e-5).all()

    def test_cosine_self_similarity_is_one(self, matrix):
        sims = F.cosine_similarity_matrix(nn.Tensor(matrix),
                                          nn.Tensor(matrix)).numpy()
        np.testing.assert_allclose(np.diag(sims), np.ones(4), atol=1e-4)


class TestLayerNorm:
    def test_zero_mean_unit_var(self, matrix):
        weight = nn.Tensor(np.ones(6, dtype=np.float32))
        bias = nn.Tensor(np.zeros(6, dtype=np.float32))
        out = F.layer_norm(nn.Tensor(matrix), weight, bias).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_params_apply(self, matrix):
        weight = nn.Tensor(np.full(6, 2.0, dtype=np.float32))
        bias = nn.Tensor(np.full(6, 3.0, dtype=np.float32))
        out = F.layer_norm(nn.Tensor(matrix), weight, bias).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.full(4, 3.0),
                                   atol=1e-3)


class TestDropout:
    def test_identity_when_eval(self, matrix):
        out = F.dropout(nn.Tensor(matrix), 0.5, rng=0, training=False)
        np.testing.assert_array_equal(out.numpy(), matrix)

    def test_identity_when_rate_zero(self, matrix):
        out = F.dropout(nn.Tensor(matrix), 0.0, rng=0, training=True)
        np.testing.assert_array_equal(out.numpy(), matrix)

    def test_scales_kept_values(self):
        ones = np.ones((100, 100), dtype=np.float32)
        out = F.dropout(nn.Tensor(ones), 0.5, rng=0, training=True).numpy()
        kept = out[out > 0]
        np.testing.assert_allclose(kept, np.full_like(kept, 2.0))
        assert 0.4 < (out > 0).mean() < 0.6


class TestGelu:
    def test_monotone_region_and_zero(self):
        out = F.gelu(nn.Tensor([-1.0, 0.0, 1.0])).numpy()
        assert out[1] == pytest.approx(0.0, abs=1e-6)
        assert out[2] > out[1] > out[0]

    def test_approaches_identity_for_large_x(self):
        out = F.gelu(nn.Tensor([10.0])).numpy()
        assert out[0] == pytest.approx(10.0, abs=1e-3)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.integers(2, 6))
def test_property_softmax_invariant_to_shift(rows, cols):
    rng = np.random.default_rng(rows * 7 + cols)
    logits = rng.standard_normal((rows, cols)).astype(np.float32)
    a = F.softmax(nn.Tensor(logits)).numpy()
    b = F.softmax(nn.Tensor(logits + 5.0)).numpy()
    np.testing.assert_allclose(a, b, atol=1e-5)
