"""Tests for attention blocks and transformer encoders."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture()
def sequence(rng):
    return nn.Tensor(rng.standard_normal((2, 5, 16)).astype(np.float32))


class TestSelfAttention:
    def test_output_shape(self, sequence):
        attn = nn.MultiHeadSelfAttention(16, num_heads=4, rng=0)
        assert attn(sequence).shape == (2, 5, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, num_heads=3, rng=0)

    def test_mask_blocks_padding(self, rng):
        attn = nn.MultiHeadSelfAttention(16, num_heads=4, rng=0)
        x = rng.standard_normal((1, 4, 16)).astype(np.float32)
        mask = np.asarray([[True, True, False, False]])
        base = attn(nn.Tensor(x), mask).numpy()
        # changing masked positions must not affect the output
        x2 = x.copy()
        x2[0, 2:] = 99.0
        perturbed = attn(nn.Tensor(x2), mask).numpy()
        np.testing.assert_allclose(base[:, :2], perturbed[:, :2], atol=1e-5)

    def test_gradients_flow(self, sequence):
        attn = nn.MultiHeadSelfAttention(16, num_heads=2, rng=0)
        attn(sequence).sum().backward()
        grads = [p.grad for p in attn.parameters()]
        assert all(g is not None for g in grads)


class TestCrossAttention:
    def test_shapes_with_different_lengths(self, rng):
        cross = nn.CrossAttention(16, num_heads=4, rng=0)
        query = nn.Tensor(rng.standard_normal((2, 3, 16)).astype(np.float32))
        context = nn.Tensor(rng.standard_normal((2, 7, 16)).astype(np.float32))
        assert cross(query, context).shape == (2, 3, 16)


class TestTransformer:
    def test_block_residual_shape(self, sequence):
        block = nn.TransformerBlock(16, num_heads=4, rng=0)
        assert block(sequence).shape == (2, 5, 16)

    def test_encoder_depth(self):
        encoder = nn.TransformerEncoder(16, depth=3, num_heads=4, rng=0)
        assert len(encoder.blocks) == 3

    def test_encoder_trains(self, sequence):
        encoder = nn.TransformerEncoder(16, depth=2, num_heads=4, rng=0)
        encoder(sequence).sum().backward()
        with_grad = [p for p in encoder.parameters() if p.grad is not None]
        assert len(with_grad) == len(list(encoder.parameters()))


class TestPositions:
    def test_sinusoidal_shape_and_range(self):
        enc = nn.sinusoidal_positions(10, 8)
        assert enc.shape == (10, 8)
        assert np.abs(enc).max() <= 1.0

    def test_rows_distinct(self):
        enc = nn.sinusoidal_positions(16, 8)
        assert not np.allclose(enc[0], enc[5])
