"""Memory tracker tests."""

import gc

import numpy as np

from repro import nn
from repro.nn.memory import MemoryTracker


class TestMemoryTracker:
    def test_records_allocations(self):
        with MemoryTracker() as tracker:
            tensor = nn.Tensor(np.zeros((100, 100), dtype=np.float32))
        assert tracker.peak_bytes >= tensor.data.nbytes

    def test_peak_reflects_simultaneous_residency(self):
        with MemoryTracker() as tracker:
            a = nn.Tensor(np.zeros(1000, dtype=np.float32))
            first_peak = tracker.current_bytes
            del a
            gc.collect()
            nn.Tensor(np.zeros(10, dtype=np.float32))
        assert tracker.peak_bytes == first_peak

    def test_nested_trackers_both_observe(self):
        with MemoryTracker() as outer:
            with MemoryTracker() as inner:
                nn.Tensor(np.zeros(64, dtype=np.float32))
        assert inner.peak_bytes > 0
        assert outer.peak_bytes >= inner.peak_bytes

    def test_no_tracking_outside_context(self):
        tracker = MemoryTracker()
        nn.Tensor(np.zeros(64, dtype=np.float32))
        assert tracker.peak_bytes == 0

    def test_unit_conversions(self):
        tracker = MemoryTracker()
        tracker.peak_bytes = 1024**3
        assert tracker.peak_gb == 1.0
        assert tracker.peak_mb == 1024.0
