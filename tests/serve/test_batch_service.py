"""The fused batch path: N answers, zero changed bits.

The acceptance bar of the micro-batching work: a response produced
inside a fused batch is byte-for-byte the response the same request
gets served alone.  ``handle_batch`` earns this by construction —
every fused request is scored through a fixed ``batch_tile``-row
operand (padded with duplicate rows), so the BLAS kernel never depends
on batch composition (DESIGN.md §13) — and these tests hold it to
that, brute-force and index-backed, plus the isolation properties: a
malformed request in a batch hurts nobody, and a fused-call failure
degrades to per-request handling rather than failing N requests.
"""

from __future__ import annotations

import json

import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import registry
from repro.serve import MatchService, ServeConfig


def canonical(response: dict) -> str:
    """A response minus its timing/trace fields, serialised — the
    'same answer' relation used throughout: every semantic field, none
    of the wall-clock ones."""
    body = {key: value for key, value in response.items()
            if key not in ("elapsed_ms", "trace_id")}
    return json.dumps(body, sort_keys=True)


class TestBatchedBitIdentity:
    def test_batched_equals_one_at_a_time(self, make_service, fitted_soft):
        service = make_service(capacity=64)
        vertices = list(fitted_soft.vertex_ids)
        requests = [{"id": f"b{i}", "vertex": v, "top_k": (i % 3) + 1}
                    for i, v in enumerate(vertices)]
        batched = service.handle_batch(requests)
        singles = [service.handle_batch([request])[0]
                   for request in requests]
        assert [canonical(r) for r in batched] == \
            [canonical(r) for r in singles]
        assert all(r["ok"] and r["tier"] == "full" for r in batched)

    def test_composition_does_not_change_answers(self, make_service,
                                                 fitted_soft):
        """The same request fused with *different* companions gets the
        same bits — the batch is invisible to each member."""
        service = make_service(capacity=64)
        vertices = list(fitted_soft.vertex_ids)
        probe = {"id": "probe", "vertex": vertices[0], "top_k": 3}
        alone = service.handle_batch([probe])[0]
        for companions in (vertices[1:3], vertices[3:9], vertices[1:]):
            batch = [probe] + [{"id": f"c{i}", "vertex": v}
                               for i, v in enumerate(companions)]
            fused = service.handle_batch(batch)[0]
            assert canonical(fused) == canonical(alone)

    def test_bad_requests_isolated_inside_batch(self, make_service,
                                                fitted_soft):
        service = make_service(capacity=64)
        vertex = fitted_soft.vertex_ids[0]
        responses = service.handle_batch([
            {"id": "ok1", "vertex": vertex, "top_k": 2},
            {"id": "bad1", "vertex": "not-a-vertex"},
            {"id": "bad2", "vertex": 10 ** 9},
            {"id": "ok2", "vertex": fitted_soft.vertex_ids[1]},
        ])
        assert [r["id"] for r in responses] == ["ok1", "bad1", "bad2", "ok2"]
        assert responses[0]["ok"] and responses[3]["ok"]
        assert responses[1]["error"]["type"] == "bad_request"
        assert responses[2]["error"]["type"] == "bad_request"

    def test_empty_batch(self, make_service):
        assert make_service().handle_batch([]) == []

    def test_fused_failure_falls_back_per_request(self, make_service,
                                                  fitted_soft,
                                                  monkeypatch):
        """If the fused scoring call blows up, every member still gets
        answered through its own ladder — never N errors for one bug."""
        service = make_service(capacity=64, breaker_min_calls=100)
        real_score = type(service.matcher).score

        def fussy_score(self, vertices, **kwargs):
            if len(vertices) > 1:
                raise RuntimeError("injected fused-path failure")
            return real_score(self, vertices, **kwargs)

        monkeypatch.setattr(type(service.matcher), "score", fussy_score)
        requests = [{"id": i, "vertex": v}
                    for i, v in enumerate(fitted_soft.vertex_ids[:4])]
        responses = service.handle_batch(requests)
        assert all(r["ok"] for r in responses)
        # and nothing was served off the fused path
        assert registry().counter("serve.batch.fused_total").value == 0


class TestIndexedBatchedBitIdentity:
    @pytest.fixture()
    def indexed_service(self, tiny_bundle, tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard",
                                                     epochs=0, seed=3))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        from repro.index import IVFPQConfig

        # nprobe == nlist: exhaustive search, no escalation path, so
        # index answers are deterministic across batch compositions
        matcher.build_index(IVFPQConfig(nlist=4, nprobe=4, pq_m=4,
                                        refine=8, seed=0))
        service = MatchService(matcher,
                               config=ServeConfig(capacity=64,
                                                  workers=1)).warmup()
        yield service
        service.shutdown(timeout=5.0)

    def test_batched_equals_one_at_a_time_with_index(self,
                                                     indexed_service):
        vertices = list(indexed_service.matcher.vertex_ids)
        requests = [{"id": i, "vertex": v, "top_k": (i % 2) + 1}
                    for i, v in enumerate(vertices)]
        batched = indexed_service.handle_batch(requests)
        singles = [indexed_service.handle_batch([request])[0]
                   for request in requests]
        assert [canonical(r) for r in batched] == \
            [canonical(r) for r in singles]
        assert all(r["ok"] and r["tier"] == "full" for r in batched)


class TestBatchTileConfig:
    def test_tile_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeConfig(batch_tile=0)

    def test_tile_width_does_not_change_answers(self, fitted_soft):
        """Different tile widths pick different (fixed) kernels; each
        is internally consistent, and each matches its own singleton
        path — the invariant is *within* a config, per DESIGN.md §13."""
        for tile in (2, 8):
            service = MatchService(
                fitted_soft, config=ServeConfig(capacity=64,
                                                batch_tile=tile)).warmup()
            requests = [{"id": i, "vertex": v}
                        for i, v in enumerate(fitted_soft.vertex_ids[:5])]
            batched = service.handle_batch(requests)
            singles = [service.handle_batch([request])[0]
                       for request in requests]
            assert [canonical(r) for r in batched] == \
                [canonical(r) for r in singles]
