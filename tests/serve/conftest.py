"""Serve-suite fixtures: a fitted soft-prompt matcher and a service
factory with fast-tripping breaker defaults.

Every test runs against a clean metrics registry (breaker state and
queue gauges are process-wide), and services are pre-warmed in the
factory so fault injection applied *after* construction never poisons
warmup itself.
"""

from __future__ import annotations

import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import registry, reset_spans, set_tracing_enabled, trace_recorder
from repro.serve import MatchService, ServeConfig


@pytest.fixture(autouse=True)
def clean_metrics():
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)
    yield
    registry().reset()
    reset_spans()
    trace_recorder().reset()
    set_tracing_enabled(True)


@pytest.fixture(scope="session")
def fitted_soft(tiny_bundle, tiny_dataset):
    """A briefly tuned soft-prompt matcher — the 'expensive' primary
    whose per-request encode the serve layer must guard."""
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="soft", epochs=1,
                                                 seed=3))
    matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                tiny_dataset.entity_vertices)
    return matcher


@pytest.fixture()
def make_service(fitted_soft):
    """Factory for pre-warmed services over the shared fitted matcher.

    Keyword overrides go straight into :class:`ServeConfig`; defaults
    trip the breaker quickly so fault tests stay fast.
    """
    created = []

    def make(**overrides) -> MatchService:
        settings = dict(capacity=4, workers=1, breaker_window=4,
                        breaker_min_calls=2, breaker_failure_threshold=0.5,
                        breaker_cooldown_ms=60_000.0)
        settings.update(overrides)
        service = MatchService(fitted_soft,
                               config=ServeConfig(**settings)).warmup()
        created.append(service)
        return service

    yield make
    for service in created:
        service.shutdown(timeout=5.0)
