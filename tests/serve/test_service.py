"""MatchService fault-injection suite: the ISSUE acceptance scenarios.

Faults are injected by shadowing ``encode_vertices`` on the shared
fitted matcher instance (restored via context manager), which exercises
exactly the path a hung or flaky text encoder would take in production.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np
import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import registry
from repro.serve import MatchService, ServeConfig


@contextlib.contextmanager
def encoder_fault(matcher, make_wrapper):
    """Temporarily replace ``matcher.encode_vertices`` with
    ``make_wrapper(original)`` via an instance attribute."""
    original = matcher.encode_vertices
    matcher.encode_vertices = make_wrapper(original)
    try:
        yield
    finally:
        del matcher.encode_vertices


def hang(delay):
    """An encoder that stalls ``delay`` seconds before doing the work —
    the stage hook notices the blown budget right after the stall."""
    def make(original):
        def wrapper(vertex_ids):
            time.sleep(delay)
            return original(vertex_ids)
        return wrapper
    return make


def explode(exc):
    def make(original):
        def wrapper(vertex_ids):
            raise exc
        return wrapper
    return make


class TestHappyPath:
    def test_full_tier_bitwise_matches_the_matcher(self, make_service,
                                                   fitted_soft):
        service = make_service()
        vertex = fitted_soft.vertex_ids[0]
        response = service.handle({"id": "r1", "vertex": vertex, "top_k": 3})
        assert response["ok"] is True
        assert response["id"] == "r1"
        assert response["vertex"] == vertex
        assert response["tier"] == "full"
        assert response["degraded"] is False
        assert "reason" not in response
        assert response["elapsed_ms"] >= 0
        expected = fitted_soft.score([vertex])[0]
        image_ids = [img.image_id for img in fitted_soft.images]
        assert len(response["matches"]) == 3
        scores = [m["score"] for m in response["matches"]]
        assert scores == sorted(scores, reverse=True)
        for match in response["matches"]:
            row = image_ids.index(match["image"])
            assert match["score"] == float(expected[row])  # bitwise
        reg = registry()
        assert reg.counter("serve.ok_total").value == 1
        assert reg.counter("serve.tier.full").value == 1
        assert reg.counter("serve.degraded_total").value == 0

    def test_top_k_clamped_to_image_count(self, make_service, fitted_soft):
        service = make_service()
        response = service.handle({"id": 1,
                                   "vertex": fitted_soft.vertex_ids[0],
                                   "top_k": 10_000})
        assert response["ok"] is True
        assert len(response["matches"]) == len(fitted_soft.images)

    def test_missing_id_echoed_as_null(self, make_service, fitted_soft):
        service = make_service()
        response = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert response["ok"] is True
        assert response["id"] is None
        assert len(response["matches"]) == 1  # top_k_default


class TestBadRequestIsolation:
    @pytest.mark.parametrize("request_body", [
        ["not", "a", "dict"],
        {"vertex": None},
        {"vertex": True},
        {"vertex": "3"},
        {"vertex": 10 ** 9},
        {"vertex": 0, "top_k": 0},
        {"vertex": 0, "top_k": "many"},
        {"vertex": 0, "budget_ms": 0},
        {"vertex": 0, "budget_ms": -5},
        {"vertex": 0, "budget_ms": "fast"},
    ], ids=["non-dict", "missing", "bool", "string", "unknown", "zero-top-k",
            "str-top-k", "zero-budget", "neg-budget", "str-budget"])
    def test_malformed_request_gets_structured_error(self, make_service,
                                                     fitted_soft,
                                                     request_body):
        if isinstance(request_body, dict) and request_body.get("vertex") == 0:
            request_body["vertex"] = fitted_soft.vertex_ids[0]
        service = make_service()
        response = service.handle(request_body)
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"
        assert response["error"]["message"]
        # the service keeps answering after the bad request
        good = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert good["ok"] is True
        assert registry().counter("serve.error.bad_request").value == 1


class TestHungEncoder:
    def test_deadline_failures_trip_breaker_then_requests_degrade(
            self, make_service, fitted_soft):
        # warmup's successful probe already sits in the breaker window,
        # so min_calls=3 means two deadline failures trip it
        service = make_service(breaker_min_calls=3, breaker_window=4)
        vertex = fitted_soft.vertex_ids[0]
        request = {"vertex": vertex, "budget_ms": 20}
        with encoder_fault(fitted_soft, hang(0.08)):
            first = service.handle(dict(request, id="a"))
            second = service.handle(dict(request, id="b"))
            assert first["ok"] is False
            assert first["error"]["type"] == "deadline_exceeded"
            assert second["ok"] is False
            reg = registry()
            assert reg.gauge("serve.breaker.text.state").value == 2  # open
            assert reg.counter("serve.deadline_exceeded_total").value >= 2
            # breaker open: the sick encoder is no longer even called,
            # and the same request now succeeds from the cached tier
            third = service.handle(dict(request, id="c"))
        assert third["ok"] is True
        assert third["tier"] == "cached"
        assert third["degraded"] is True
        assert third["reason"] == "breaker_open"
        reg = registry()
        assert reg.counter("serve.tier.cached").value == 1
        assert reg.counter("serve.degraded_total").value == 1

    def test_deadline_bounded_return(self, make_service, fitted_soft):
        service = make_service()
        vertex = fitted_soft.vertex_ids[1]
        stall = 0.08
        with encoder_fault(fitted_soft, hang(stall)):
            started = time.monotonic()
            response = service.handle({"vertex": vertex, "budget_ms": 20})
            wall = time.monotonic() - started
        # no stale entry yet, so the blown budget surfaces as an error —
        # within budget plus roughly one stage (the stalled encode), far
        # below what letting the full pipeline finish would take
        assert response["ok"] is False
        assert response["error"]["type"] == "deadline_exceeded"
        assert wall >= 0.02
        assert wall < stall + 1.0


class TestStaleTier:
    def test_stale_answers_after_mid_request_deadline(self, make_service,
                                                      fitted_soft):
        service = make_service()
        vertex = fitted_soft.vertex_ids[2]
        fresh = service.handle({"id": "warm", "vertex": vertex, "top_k": 2})
        assert fresh["tier"] == "full"
        with encoder_fault(fitted_soft, hang(0.08)):
            response = service.handle({"id": "late", "vertex": vertex,
                                       "top_k": 2, "budget_ms": 20})
        assert response["ok"] is True
        assert response["tier"] == "stale"
        assert response["degraded"] is True
        assert response["reason"] == "deadline_exceeded"
        # the stale answer is the previously served result, bit for bit
        assert response["matches"] == fresh["matches"]
        assert registry().counter("serve.tier.stale").value == 1


class TestFlakyEncoder:
    def test_backend_error_falls_to_cached(self, make_service, fitted_soft):
        service = make_service(breaker_min_calls=3)
        vertex = fitted_soft.vertex_ids[0]
        with encoder_fault(fitted_soft, explode(RuntimeError("flaky"))):
            response = service.handle({"vertex": vertex})
        assert response["ok"] is True
        assert response["tier"] == "cached"
        assert response["degraded"] is True
        assert response["reason"] == "backend_error"
        # and once the backend recovers, full service resumes
        recovered = service.handle({"vertex": vertex})
        assert recovered["tier"] == "full"


class TestCachedBitIdentity:
    def test_cached_tier_equals_standalone_hard_matcher(
            self, make_service, fitted_soft, tiny_bundle, tiny_dataset):
        service = make_service()
        service.text_breaker.force_open()
        vertex = fitted_soft.vertex_ids[1]
        response = service.handle({"vertex": vertex, "top_k": 5})
        assert response["tier"] == "cached"
        assert response["reason"] == "breaker_open"

        config = fitted_soft.config
        standalone = CrossEM(tiny_bundle, CrossEMConfig(
            prompt="hard", d=config.d, epochs=0, seed=config.seed,
            aggregator=config.aggregator))
        standalone.fit(tiny_dataset.graph, tiny_dataset.images,
                       tiny_dataset.entity_vertices)
        expected = standalone.score([vertex])[0]
        image_ids = [img.image_id for img in standalone.images]
        order = sorted(range(len(image_ids)),
                       key=lambda i: (-float(expected[i]), i))[:5]
        assert [m["image"] for m in response["matches"]] == \
            [image_ids[i] for i in order]
        for match, row in zip(response["matches"], order):
            assert match["score"] == float(expected[row])  # exact equality


class TestConstruction:
    def test_unfitted_matcher_rejected(self, tiny_bundle):
        with pytest.raises(ValueError, match="fitted"):
            MatchService(CrossEM(tiny_bundle))

    def test_discrete_matcher_is_its_own_fallback(self, tiny_bundle,
                                                  tiny_dataset):
        matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0,
                                                     seed=3))
        matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                    tiny_dataset.entity_vertices)
        service = MatchService(matcher, config=ServeConfig(capacity=2))
        assert service.fallback is matcher

    @pytest.mark.parametrize("kwargs", [
        dict(capacity=0), dict(workers=0), dict(default_budget_ms=0),
        dict(top_k_default=0), dict(full_floor_ms=-1.0),
        dict(stale_capacity=0),
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)
