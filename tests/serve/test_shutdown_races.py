"""Shutdown vs submit: the race that must end in typed rejections.

A reader thread pumping requests into a service that is concurrently
shutting down must never crash and never hang — every submit returns
either ``None`` (enqueued, will be answered) or a structured
``unavailable`` response.  These tests drive the race deliberately
(barrier-started submitter threads against a shutdown) and the trivial
ordering (submit strictly after shutdown).
"""

from __future__ import annotations

import json
import threading

from repro.obs import registry
from repro.serve import BoundedQueue, Unavailable


class TestSubmitAfterShutdown:
    def test_submit_after_shutdown_is_typed_rejection(self, make_service,
                                                      fitted_soft):
        service = make_service()
        responses = []
        service.start(responses.append)
        service.shutdown()
        rejection = service.submit({"id": "late",
                                    "vertex": fitted_soft.vertex_ids[0]})
        assert rejection is not None
        assert rejection["ok"] is False
        assert rejection["error"]["type"] == "unavailable"
        assert rejection["id"] == "late"
        # a real client can serialise it like any other response
        json.dumps(rejection)

    def test_rejection_carries_trace(self, make_service, fitted_soft):
        service = make_service()
        service.start(lambda response: None)
        service.shutdown()
        rejection = service.submit({"id": 1,
                                    "vertex": fitted_soft.vertex_ids[0]})
        assert rejection.get("trace_id")

    def test_queue_put_after_close_raises_unavailable(self):
        queue = BoundedQueue(2, name="race.queue")
        queue.close()
        try:
            queue.put("item")
            raised = None
        except Unavailable as exc:
            raised = exc
        assert raised is not None
        assert raised.code == "unavailable"
        assert "race.queue" in str(raised)


class TestConcurrentShutdown:
    def test_submitters_racing_shutdown_never_crash(self, make_service,
                                                    fitted_soft):
        """N submitter threads vs one shutdown: every submit returns a
        value (None or a typed rejection); nothing raises, nothing
        hangs, and everything enqueued is eventually answered."""
        service = make_service(capacity=64, workers=2)
        emitted = []
        emitted_lock = threading.Lock()

        def emit(response):
            with emitted_lock:
                emitted.append(response)

        service.start(emit)
        vertex = fitted_soft.vertex_ids[0]
        n_threads, per_thread = 4, 25
        barrier = threading.Barrier(n_threads + 1)
        failures = []
        rejections = []

        def submitter(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                try:
                    result = service.submit(
                        {"id": f"w{worker}-{i}", "vertex": vertex})
                except BaseException as exc:  # the bug this test exists for
                    failures.append(exc)
                    return
                if result is not None:
                    with emitted_lock:
                        rejections.append(result)

        threads = [threading.Thread(target=submitter, args=(worker,))
                   for worker in range(n_threads)]
        for thread in threads:
            thread.start()
        barrier.wait()  # all submitters in flight...
        service.shutdown()  # ...and the rug comes out
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert failures == []
        # conservation: every submit is accounted exactly once
        with emitted_lock:
            answered = len(emitted) + len(rejections)
        assert answered == n_threads * per_thread
        for rejection in rejections:
            assert rejection["error"]["type"] in ("unavailable",
                                                  "overloaded")

    def test_unavailable_counted_as_requests(self, make_service,
                                             fitted_soft):
        service = make_service()
        service.start(lambda response: None)
        service.shutdown()
        before = registry().counter("serve.requests_total").value
        service.submit({"id": 1, "vertex": fitted_soft.vertex_ids[0]})
        assert registry().counter("serve.requests_total").value == before + 1
