"""Bounded work queue: shedding, draining, and depth metrics."""

import threading

import pytest

from repro.obs import registry
from repro.serve import BoundedQueue, Overloaded


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(3)
        for item in "abc":
            queue.put(item)
        assert [queue.get() for _ in range(3)] == ["a", "b", "c"]

    def test_sheds_when_full_with_typed_error(self):
        queue = BoundedQueue(2)
        queue.put(1)
        queue.put(2)
        with pytest.raises(Overloaded) as excinfo:
            queue.put(3)
        assert excinfo.value.depth == 2
        assert excinfo.value.capacity == 2
        assert excinfo.value.code == "overloaded"
        assert registry().counter("serve.queue.shed_total").value == 1
        # shedding dropped the new item, not the queued ones
        assert queue.get() == 1

    def test_depth_gauge_tracks(self):
        queue = BoundedQueue(4)
        gauge = registry().gauge("serve.queue.depth")
        assert gauge.value == 0
        queue.put("x")
        queue.put("y")
        assert gauge.value == 2
        queue.get()
        assert gauge.value == 1
        assert registry().gauge("serve.queue.capacity").value == 4

    def test_close_drains_then_signals_none(self):
        queue = BoundedQueue(2)
        queue.put("last")
        queue.close()
        assert queue.get() == "last"
        assert queue.get() is None

    def test_close_wakes_blocked_getter(self):
        queue = BoundedQueue(1)
        results = []
        worker = threading.Thread(target=lambda: results.append(queue.get()))
        worker.start()
        queue.close()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert results == [None]

    def test_put_after_close_rejected(self):
        queue = BoundedQueue(1)
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put("late")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
