"""Overload burst: shedding with typed rejections and live queue metrics.

The worker is pinned on an Event inside the encoder, the queue is filled
behind it, and the burst's metrics snapshot is exported as the JSONL
artifact CI uploads (``REPRO_SERVE_METRICS_OUT`` overrides the path).
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs import export_jsonl, read_jsonl, registry

from .test_service import encoder_fault


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestOverloadBurst:
    def test_burst_sheds_typed_and_metrics_capture_it(self, make_service,
                                                      fitted_soft, tmp_path):
        service = make_service(capacity=2, workers=1)
        responses = []
        service.start(responses.append)

        entered = threading.Event()
        release = threading.Event()

        def pin(original):
            def wrapper(vertex_ids):
                entered.set()
                release.wait(timeout=30)
                return original(vertex_ids)
            return wrapper

        vertex = fitted_soft.vertex_ids[0]
        shed = []
        with encoder_fault(fitted_soft, pin):
            try:
                assert service.submit({"id": "a", "vertex": vertex}) is None
                assert entered.wait(timeout=10)  # worker pinned inside encode
                assert service.submit({"id": "b", "vertex": vertex}) is None
                assert service.submit({"id": "c", "vertex": vertex}) is None
                # queue full behind the pinned worker: the burst overflow
                # is shed immediately with a typed error, not queued
                for request_id in ("d", "e"):
                    rejection = service.submit({"id": request_id,
                                                "vertex": vertex})
                    assert rejection is not None
                    assert rejection["ok"] is False
                    assert rejection["error"]["type"] == "overloaded"
                    assert rejection["id"] == request_id
                    shed.append(rejection)

                reg = registry()
                assert reg.gauge("serve.queue.depth").value == 2
                assert reg.gauge("serve.queue.capacity").value == 2
                assert reg.counter("serve.queue.shed_total").value == 2

                # snapshot the burst while the queue is still backed up —
                # this is the artifact the CI serve job uploads
                out = os.environ.get("REPRO_SERVE_METRICS_OUT") \
                    or str(tmp_path / "serve-overload-metrics.jsonl")
                export_jsonl(out, meta={"scenario": "overload-burst",
                                        "capacity": 2})
                rows = {row.get("name"): row for row in read_jsonl(out)}
                assert rows["serve.queue.depth"]["value"] == 2
                assert rows["serve.queue.shed_total"]["value"] == 2
            finally:
                release.set()

        # the admitted requests all complete once the encoder unblocks
        assert wait_until(lambda: len(responses) == 3)
        assert sorted(r["id"] for r in responses) == ["a", "b", "c"]
        assert all(r["ok"] for r in responses)

    def test_shed_responses_count_as_requests(self, make_service,
                                              fitted_soft):
        service = make_service(capacity=1, workers=1)
        responses = []
        service.start(responses.append)
        entered = threading.Event()
        release = threading.Event()

        def pin(original):
            def wrapper(vertex_ids):
                entered.set()
                release.wait(timeout=30)
                return original(vertex_ids)
            return wrapper

        vertex = fitted_soft.vertex_ids[0]
        with encoder_fault(fitted_soft, pin):
            try:
                service.submit({"id": 1, "vertex": vertex})
                assert entered.wait(timeout=10)
                service.submit({"id": 2, "vertex": vertex})
                rejection = service.submit({"id": 3, "vertex": vertex})
                assert rejection["error"]["type"] == "overloaded"
                assert "capacity 1" in rejection["error"]["message"] or \
                    rejection["error"]["message"]
            finally:
                release.set()
        assert wait_until(lambda: len(responses) == 2)
        reg = registry()
        # every submission is a request: 2 served + 1 shed
        assert reg.counter("serve.requests_total").value == 3
        assert reg.counter("serve.error.overloaded").value == 1
