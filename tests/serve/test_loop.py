"""The stdin/stdout JSON-lines loop: corrupt input never stops it."""

from __future__ import annotations

import io
import json


from repro.obs import registry
from repro.serve import serve_loop


def run_loop(service, lines):
    source = io.StringIO("".join(line + "\n" for line in lines))
    sink = io.StringIO()
    written = serve_loop(service, source, sink)
    responses = [json.loads(line) for line in
                 sink.getvalue().splitlines() if line]
    return written, responses


class TestServeLoop:
    def test_round_trip_survives_corrupt_lines(self, make_service,
                                               fitted_soft):
        service = make_service()
        vertex = fitted_soft.vertex_ids[0]
        written, responses = run_loop(service, [
            json.dumps({"id": "q1", "vertex": vertex}),
            "",  # blank lines are skipped, not answered
            "{this is not json",
            json.dumps({"id": "q2", "vertex": 10 ** 9}),
            json.dumps({"id": "q3", "vertex": vertex, "top_k": 2}),
        ])
        assert written == 4
        assert len(responses) == 4
        by_id = {r["id"]: r for r in responses}

        assert by_id["q1"]["ok"] is True
        assert by_id["q1"]["tier"] == "full"

        corrupt = by_id[None]
        assert corrupt["ok"] is False
        assert corrupt["error"]["type"] == "bad_request"
        assert "invalid JSON" in corrupt["error"]["message"]

        assert by_id["q2"]["ok"] is False
        assert by_id["q2"]["error"]["type"] == "bad_request"

        # the loop kept answering to the very last request
        assert by_id["q3"]["ok"] is True
        assert len(by_id["q3"]["matches"]) == 2

    def test_every_response_is_one_compact_json_line(self, make_service,
                                                     fitted_soft):
        service = make_service()
        vertex = fitted_soft.vertex_ids[1]
        source = io.StringIO(json.dumps({"id": 7, "vertex": vertex}) + "\n")
        sink = io.StringIO()
        serve_loop(service, source, sink)
        payload = sink.getvalue()
        assert payload.endswith("\n")
        lines = payload.splitlines()
        assert len(lines) == 1
        assert "\n" not in lines[0]
        assert json.loads(lines[0])["id"] == 7

    def test_empty_input_serves_nothing(self, make_service):
        service = make_service()
        written, responses = run_loop(service, [])
        assert written == 0
        assert responses == []

    def test_bad_lines_counted_separately(self, make_service, fitted_soft):
        """Framing corruption gets its own counter, distinct from
        well-formed-but-invalid requests (both are bad_request to the
        client, but only one means the *transport* is sick)."""
        service = make_service()
        vertex = fitted_soft.vertex_ids[0]
        run_loop(service, [
            "{not json",
            "also not json",
            json.dumps({"id": "bad", "vertex": 10 ** 9}),  # unknown vertex
            json.dumps({"id": "good", "vertex": vertex}),
        ])
        reg = registry()
        assert reg.counter("serve.requests.bad_line").value == 2
        # every bad line still counts as a (failed) request
        assert reg.counter("serve.requests_total").value == 4
        assert reg.counter("serve.error.bad_request").value == 3
