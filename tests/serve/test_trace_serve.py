"""Request tracing through the serve layer, on fake clocks.

Every response must carry a ``trace_id``; error, degraded, deadline and
shed requests must be retained even at sample rate 0; breaker flips and
degradation decisions must land inside the owning request's trace; with
tracing disabled nothing is minted or recorded.
"""

import itertools

import pytest

from repro.obs.trace import (SamplePolicy, TraceRecorder, Tracer,
                             set_tracing_enabled)
from repro.serve import MatchService, ServeConfig

from .test_deadline import FakeClock


class AutoClock(FakeClock):
    """A FakeClock that also advances a little on every read, so
    deadlines actually elapse without real time passing."""

    def __init__(self, start: float = 100.0, step: float = 0.01) -> None:
        super().__init__(start)
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_traced_service(fitted_soft, *, rate=1.0, clock=None,
                        trace_capacity=64, **overrides):
    clock = clock if clock is not None else FakeClock()
    ids = (f"trace{i:04d}" for i in itertools.count())
    recorder = TraceRecorder(capacity=trace_capacity)
    tracer = Tracer(policy=SamplePolicy(rate=rate), recorder=recorder,
                    clock=clock, id_factory=lambda: next(ids))
    settings = dict(capacity=4, workers=1, breaker_window=4,
                    breaker_min_calls=2, breaker_failure_threshold=0.5,
                    breaker_cooldown_ms=60_000.0)
    settings.update(overrides)
    service = MatchService(fitted_soft, config=ServeConfig(**settings),
                           clock=clock, tracer=tracer).warmup()
    return service, recorder


def span_names(span, acc=None):
    acc = acc if acc is not None else []
    acc.append(span["name"])
    for child in span["children"]:
        span_names(child, acc)
    return acc


def events_of(span, kind, acc=None):
    acc = acc if acc is not None else []
    acc.extend(e for e in span["events"] if e["kind"] == kind)
    for child in span["children"]:
        events_of(child, kind, acc)
    return acc


class TestTraceIds:
    def test_every_response_carries_a_unique_trace_id(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        vertex = fitted_soft.vertex_ids[0]
        responses = [service.handle({"vertex": vertex}) for _ in range(3)]
        ids = [response["trace_id"] for response in responses]
        assert ids == ["trace0000", "trace0001", "trace0002"]
        assert [row["trace_id"] for row in recorder.snapshot()] == ids

    def test_error_response_also_carries_trace_id(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        response = service.handle({"vertex": "nope"})
        assert response["ok"] is False
        assert response["trace_id"] == "trace0000"

    def test_request_spans_and_events_in_causal_order(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        response = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert response["ok"] is True and response["tier"] == "full"
        [row] = recorder.snapshot()
        names = span_names(row["spans"])
        assert names[0] == "serve.request"
        assert "tier/full" in names
        assert "matcher/score" in names
        # the degrade decision precedes any tier work
        [degrade] = events_of(row["spans"], "degrade")
        assert degrade["attrs"]["tiers"] == ["full", "cached", "stale"]
        tier_span = next(c for c in row["spans"]["children"]
                         if c["name"] == "tier/full")
        assert degrade["at_ms"] <= tier_span["start_ms"]
        # the matcher's stage hooks leave typed events inside the score
        stages = [e["attrs"]["stage"]
                  for e in events_of(row["spans"], "stage")]
        assert "encode_text" in stages


class TestForcedRetention:
    def test_errors_always_sampled_at_rate_zero(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft, rate=0.0)
        service.handle({"vertex": fitted_soft.vertex_ids[0]})  # ok: dropped
        service.handle({"not": "valid"})                       # error: kept
        [row] = recorder.snapshot()
        assert row["flags"] == ["error"]
        assert row["sampled"] == "forced"
        [event] = events_of(row["spans"], "error")
        assert event["attrs"]["code"] == "bad_request"

    def test_degraded_answers_always_sampled(self, fitted_soft,
                                             monkeypatch):
        service, recorder = make_traced_service(fitted_soft, rate=0.0)
        monkeypatch.setattr(service, "_score_full",
                            lambda *a, **k: (_ for _ in ()).throw(
                                RuntimeError("encoder down")))
        response = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert response["ok"] is True and response["degraded"] is True
        [row] = recorder.snapshot()
        assert row["flags"] == ["degraded"]
        assert "tier/cached" in span_names(row["spans"])

    def test_deadline_blown_requests_always_sampled(self, fitted_soft):
        clock = AutoClock(step=0.01)  # 10ms per clock read
        service, recorder = make_traced_service(fitted_soft, rate=0.0,
                                                clock=clock)
        response = service.handle({"vertex": fitted_soft.vertex_ids[0],
                                   "budget_ms": 1})
        assert response["ok"] is False
        assert response["error"]["type"] == "deadline_exceeded"
        [row] = recorder.snapshot()
        assert "deadline" in row["flags"] and "error" in row["flags"]
        assert events_of(row["spans"], "deadline")

    def test_breaker_transition_lands_in_request_trace(self, fitted_soft,
                                                       monkeypatch):
        service, recorder = make_traced_service(
            fitted_soft, rate=0.0, breaker_window=2, breaker_min_calls=1)
        monkeypatch.setattr(
            service.matcher, "score",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")))
        response = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert response["ok"] is True and response["tier"] == "cached"
        [row] = recorder.snapshot()
        [flip] = events_of(row["spans"], "breaker")
        assert flip["attrs"] == {"breaker": "text", "from_state": "closed",
                                 "to_state": "open"}

    def test_shed_requests_get_their_own_forced_trace(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft, rate=0.0,
                                                capacity=1)
        vertex = fitted_soft.vertex_ids[0]
        assert service.submit({"vertex": vertex}) is None  # enqueued
        shed = service.submit({"vertex": vertex})          # over capacity
        assert shed["ok"] is False
        assert shed["error"]["type"] == "overloaded"
        assert shed["trace_id"] == "trace0000"
        [row] = recorder.snapshot()
        assert row["flags"] == ["error", "shed"]
        [event] = events_of(row["spans"], "shed")
        assert event["attrs"]["capacity"] == 1


class TestTraceJoin:
    """Cross-process propagation (DESIGN.md §15): a request carrying a
    ``trace`` context *joins* the caller's trace instead of minting —
    the id echoes back, the caller-side parent is recorded, and
    ``return_spans`` ships the finished subtree in the response."""

    def test_joined_id_echoes_and_records_with_parent(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        response = service.handle(
            {"vertex": fitted_soft.vertex_ids[0],
             "trace": {"trace_id": "router-abc", "parent_span": "s3"}})
        assert response["ok"] is True
        assert response["trace_id"] == "router-abc"
        [row] = recorder.snapshot()
        assert row["trace_id"] == "router-abc"
        assert row["parent_span"] == "s3"

    def test_return_spans_ships_the_subtree(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        response = service.handle(
            {"vertex": fitted_soft.vertex_ids[0],
             "trace": {"trace_id": "router-abc", "parent_span": "s3",
                       "return_spans": True}})
        wire = response["trace"]
        assert wire["parent_span"] == "s3"
        assert wire["spans"]["name"] == "serve.request"
        assert "tier/full" in span_names(wire["spans"])

    def test_without_return_spans_no_subtree_ships(self, fitted_soft):
        service, _ = make_traced_service(fitted_soft)
        response = service.handle(
            {"vertex": fitted_soft.vertex_ids[0],
             "trace": {"trace_id": "router-abc", "parent_span": "s3"}})
        assert "trace" not in response

    def test_return_spans_respects_local_sampling(self, fitted_soft):
        """Rate 0 and a healthy answer: the id still echoes, but the
        unretained subtree must not ship — retention is local."""
        service, recorder = make_traced_service(fitted_soft, rate=0.0)
        response = service.handle(
            {"vertex": fitted_soft.vertex_ids[0],
             "trace": {"trace_id": "router-abc", "return_spans": True}})
        assert response["trace_id"] == "router-abc"
        assert "trace" not in response
        assert len(recorder) == 0

    def test_malformed_context_mints_fresh_and_counts(self, fitted_soft):
        from repro.obs import registry

        service, _ = make_traced_service(fitted_soft)
        bad_contexts = [17, {"trace_id": ""}, {"trace_id": 42},
                        {"parent_span": "s1"}]
        for i, ctx in enumerate(bad_contexts):
            response = service.handle(
                {"vertex": fitted_soft.vertex_ids[0], "trace": ctx})
            assert response["trace_id"] == f"trace{i:04d}", ctx
        assert registry().counter("serve.trace.bad_context").value \
            == len(bad_contexts)

    def test_non_string_parent_is_dropped_not_fatal(self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        response = service.handle(
            {"vertex": fitted_soft.vertex_ids[0],
             "trace": {"trace_id": "router-abc", "parent_span": 7}})
        assert response["trace_id"] == "router-abc"
        [row] = recorder.snapshot()
        assert "parent_span" not in row

    def test_shed_rejection_joins_and_ships_forced_trace(self,
                                                         fitted_soft):
        service, recorder = make_traced_service(fitted_soft, rate=0.0,
                                                capacity=1)
        vertex = fitted_soft.vertex_ids[0]
        assert service.submit({"vertex": vertex}) is None  # fills the slot
        shed = service.submit(
            {"vertex": vertex,
             "trace": {"trace_id": "router-shed", "parent_span": "s2",
                       "return_spans": True}})
        assert shed["ok"] is False
        assert shed["error"]["type"] == "overloaded"
        assert shed["trace_id"] == "router-shed"
        assert "shed" in shed["trace"]["flags"]
        [row] = recorder.snapshot()
        assert row["trace_id"] == "router-shed"
        assert row["parent_span"] == "s2"


class TestDisabled:
    def test_disabled_tracing_omits_trace_id_and_records_nothing(
            self, fitted_soft):
        service, recorder = make_traced_service(fitted_soft)
        set_tracing_enabled(False)
        response = service.handle({"vertex": fitted_soft.vertex_ids[0]})
        assert response["ok"] is True
        assert "trace_id" not in response
        assert len(recorder) == 0


class TestConfig:
    @pytest.mark.parametrize("overrides", [dict(trace_sample_rate=1.5),
                                           dict(trace_sample_rate=-0.1),
                                           dict(trace_capacity=0)])
    def test_invalid_trace_settings_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServeConfig(**overrides)
