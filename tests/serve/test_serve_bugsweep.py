"""The serve-layer bug sweep: warmup breakers, top_k clamp, emit death.

Three previously-latent bugs, each pinned by a regression test:

* ``warmup()`` used to run the fallback matcher's encode/score outside
  the circuit breakers, so a wedged encoder could stall startup forever
  with no breaker ever noticing — now every warmup encode/score is a
  breaker-guarded call.
* ``_parse`` accepted any positive ``top_k`` (``10**9`` included) and
  downstream code dutifully tried to honour it; now it clamps to the
  image repository size and answers with that many matches.
* ``serve_loop``'s ``emit`` let a sink write failure propagate out of a
  worker thread mid-drain, silently killing the worker; now it is
  caught, counted (``serve.emit.failed``), and triggers a clean stop.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import registry
from repro.serve import MatchService, ServeConfig, serve_loop


class TestWarmupThroughBreakers:
    def test_fallback_warmup_counts_breaker_calls(self, fitted_soft):
        """Every fallback encode/score in warmup shows up in breaker
        telemetry — proof the calls run *inside* the breakers."""
        service = MatchService(fitted_soft,
                               config=ServeConfig(capacity=4, workers=1))
        vision_before = registry().counter(
            "serve.breaker.vision.successes_total").value
        text_before = registry().counter(
            "serve.breaker.text.successes_total").value
        service.warmup()
        assert registry().counter(
            "serve.breaker.vision.successes_total").value > vision_before
        assert registry().counter(
            "serve.breaker.text.successes_total").value > text_before
        service.shutdown(timeout=5.0)

    def test_wedged_fallback_encoder_fails_loud_not_silent(self,
                                                           fitted_soft,
                                                           monkeypatch):
        """A fallback whose image tower raises must surface through the
        vision breaker (counted as a breaker failure), not bypass it."""
        service = MatchService(fitted_soft,
                               config=ServeConfig(capacity=4, workers=1))
        fallback = service.fallback

        def broken_encode(indices):
            raise RuntimeError("image tower wedged")

        monkeypatch.setattr(fallback, "_encode_images", broken_encode)
        failures_before = registry().counter(
            "serve.breaker.vision.failures_total").value
        with pytest.raises(RuntimeError):
            service.warmup()
        assert registry().counter(
            "serve.breaker.vision.failures_total").value > failures_before


class TestTopKClamp:
    def test_huge_top_k_clamped_to_repository(self, make_service,
                                              fitted_soft):
        service = make_service()
        n_images = len(service.matcher.images)
        response = service.handle({"id": 1,
                                   "vertex": fitted_soft.vertex_ids[0],
                                   "top_k": 10 ** 9})
        assert response["ok"] is True
        assert len(response["matches"]) == n_images

    def test_exact_repository_size_unchanged(self, make_service,
                                             fitted_soft):
        service = make_service()
        n_images = len(service.matcher.images)
        response = service.handle({"id": 1,
                                   "vertex": fitted_soft.vertex_ids[0],
                                   "top_k": n_images})
        assert response["ok"] is True
        assert len(response["matches"]) == n_images

    def test_nonpositive_top_k_still_bad_request(self, make_service,
                                                 fitted_soft):
        service = make_service()
        response = service.handle({"id": 1,
                                   "vertex": fitted_soft.vertex_ids[0],
                                   "top_k": 0})
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"


class _FailingSink(io.StringIO):
    """A sink that dies after ``survive`` successful writes."""

    def __init__(self, survive: int) -> None:
        super().__init__()
        self.survive = survive
        self.writes = 0

    def write(self, text: str) -> int:
        self.writes += 1
        if self.writes > self.survive:
            raise BrokenPipeError("reader went away")
        return super().write(text)


class TestEmitFailure:
    def test_sink_failure_stops_loop_cleanly(self, make_service,
                                             fitted_soft):
        """A broken response sink ends the loop (counted, logged) —
        no exception escapes, no worker thread dies screaming."""
        service = make_service(capacity=16)
        vertex = fitted_soft.vertex_ids[0]
        lines = [json.dumps({"id": i, "vertex": vertex})
                 for i in range(8)]
        source = io.StringIO("".join(line + "\n" for line in lines))
        sink = _FailingSink(survive=1)
        written = serve_loop(service, source, sink)  # must not raise
        assert written == 1
        assert registry().counter("serve.emit.failed").value >= 1

    def test_healthy_sink_counts_nothing(self, make_service, fitted_soft):
        service = make_service()
        source = io.StringIO(json.dumps(
            {"id": 1, "vertex": fitted_soft.vertex_ids[0]}) + "\n")
        written = serve_loop(service, source, io.StringIO())
        assert written == 1
        assert registry().counter("serve.emit.failed").value == 0
