"""Deadline semantics under a fully controlled clock."""

import pytest

from repro.serve import Deadline, DeadlineExceeded


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.bounded
        assert deadline.remaining() == pytest.approx(1.0)
        deadline.check("encode")  # plenty left: no raise
        clock.advance(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.2)

    def test_check_raises_with_stage_and_budget(self):
        clock = FakeClock()
        deadline = Deadline.after(0.05, clock=clock)
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("encode_text")
        exc = excinfo.value
        assert exc.stage == "encode_text"
        assert exc.budget == pytest.approx(0.05)
        assert exc.elapsed == pytest.approx(0.2)
        assert exc.code == "deadline_exceeded"
        assert "encode_text" in str(exc)

    def test_exact_boundary_is_expired(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_unbounded_never_expires(self):
        clock = FakeClock()
        deadline = Deadline.unbounded(clock=clock)
        clock.advance(1e9)
        assert not deadline.bounded
        assert not deadline.expired()
        deadline.check("anything")
        assert deadline.remaining() == float("inf")

    def test_elapsed_tracks_creation(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        clock.advance(2.5)
        assert deadline.elapsed() == pytest.approx(2.5)

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            Deadline.after(budget)
