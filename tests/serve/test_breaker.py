"""Circuit-breaker state machine, driven by a fake clock."""

import pytest

from repro.obs import registry
from repro.serve import (STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN,
                         BreakerOpen, CircuitBreaker)
from .test_deadline import FakeClock


def make_breaker(clock, **overrides):
    settings = dict(window=4, failure_threshold=0.5, min_calls=2,
                    cooldown=10.0)
    settings.update(overrides)
    return CircuitBreaker("enc", clock=clock, **settings)


def boom():
    raise OSError("backend down")


class TestClosedToOpen:
    def test_starts_closed_and_passes_calls(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state() == STATE_CLOSED
        assert breaker.call(lambda: 41 + 1) == 42
        assert breaker.allows_call()

    def test_stays_closed_below_min_calls(self):
        breaker = make_breaker(FakeClock(), min_calls=3)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state() == STATE_CLOSED

    def test_opens_at_failure_threshold(self):
        breaker = make_breaker(FakeClock())
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state() == STATE_OPEN
        assert registry().counter("serve.breaker.enc.open_total").value == 1

    def test_successes_dilute_the_window(self):
        breaker = make_breaker(FakeClock(), window=4, min_calls=4)
        for _ in range(3):
            breaker.call(lambda: "ok")
        with pytest.raises(OSError):
            breaker.call(boom)
        # one failure in a window of four: 25% < 50% threshold
        assert breaker.state() == STATE_CLOSED


class TestOpen:
    def test_rejects_without_calling(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        calls = []
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.call(lambda: calls.append(1))
        assert calls == []  # backend untouched while open
        assert excinfo.value.retry_after == pytest.approx(10.0)
        assert registry().counter(
            "serve.breaker.enc.rejected_total").value == 1

    def test_state_gauge_tracks_transitions(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        gauge = registry().gauge("serve.breaker.enc.state")
        assert gauge.value == 0  # closed
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert gauge.value == 2  # open
        clock.advance(10.0)
        assert breaker.state() == STATE_HALF_OPEN
        assert gauge.value == 1  # half-open


class TestHalfOpen:
    def trip(self, clock, **overrides):
        breaker = make_breaker(clock, **overrides)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        clock.advance(10.0)
        return breaker

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        assert breaker.call(lambda: "healthy") == "healthy"
        assert breaker.state() == STATE_CLOSED
        # the window was cleared: one new failure cannot instantly re-open
        with pytest.raises(OSError):
            breaker.call(boom)
        assert breaker.state() == STATE_CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        with pytest.raises(OSError):
            breaker.call(boom)
        assert breaker.state() == STATE_OPEN
        clock.advance(9.0)  # cooldown restarted: not yet probing again
        assert breaker.state() == STATE_OPEN
        clock.advance(1.0)
        assert breaker.state() == STATE_HALF_OPEN

    def test_single_probe_slot(self):
        clock = FakeClock()
        breaker = self.trip(clock)
        breaker._before_call()  # probe admitted and now in flight
        with pytest.raises(BreakerOpen):
            breaker.call(lambda: "second caller")
        breaker.record_success()  # probe returns healthy
        assert breaker.state() == STATE_CLOSED


class TestAdminControls:
    def test_force_open_and_reset(self):
        breaker = make_breaker(FakeClock())
        breaker.force_open()
        assert breaker.state() == STATE_OPEN
        assert not breaker.allows_call()
        breaker.reset()
        assert breaker.state() == STATE_CLOSED
        assert breaker.call(lambda: 7) == 7

    @pytest.mark.parametrize("kwargs", [
        dict(window=0), dict(failure_threshold=0.0),
        dict(failure_threshold=1.5), dict(min_calls=0), dict(cooldown=0.0),
    ])
    def test_bad_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), **kwargs)


class TestClockIsolation:
    """The clock is per *instance* — two breakers on independent fake
    clocks must never see each other's time (the shard router runs one
    breaker per shard, and its tests drive them separately)."""

    def trip(self, breaker):
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(boom)
        assert breaker.state() == STATE_OPEN

    def test_two_breakers_on_independent_clocks(self):
        clock_a, clock_b = FakeClock(), FakeClock()
        a = CircuitBreaker("shard0", clock=clock_a, window=4,
                           failure_threshold=0.5, min_calls=2,
                           cooldown=10.0)
        b = CircuitBreaker("shard1", clock=clock_b, window=4,
                           failure_threshold=0.5, min_calls=2,
                           cooldown=10.0)
        self.trip(a)
        self.trip(b)
        # advance only a's clock past the cooldown
        clock_a.now += 11.0
        assert a.allows_call(), "a's cooldown elapsed on a's clock"
        assert not b.allows_call(), \
            "b must not inherit a's time — clocks are per instance"
        # and the probe bookkeeping stays separate too
        a.record_success()
        assert a.state() == STATE_CLOSED
        assert b.state() == STATE_OPEN

    def test_async_records_share_no_state_across_instances(self):
        """The router's accounting path (allows_call + record_*)
        touches only the instance it is called on."""
        clock = FakeClock()
        first = CircuitBreaker("shardA", clock=clock, window=4,
                               failure_threshold=0.5, min_calls=2,
                               cooldown=10.0)
        second = CircuitBreaker("shardB", clock=clock, window=4,
                                failure_threshold=0.5, min_calls=2,
                                cooldown=10.0)
        for _ in range(2):
            assert first.allows_call()
            first.record_failure()
        assert first.state() == STATE_OPEN
        assert not first.allows_call()
        assert second.state() == STATE_CLOSED
        assert second.allows_call()
