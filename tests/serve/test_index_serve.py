"""The serve layer over an index-backed matcher.

Contract: attaching an ANN index changes *how* the full tier computes
top-k (index shortlist instead of the brute GEMM) but not *what* a
response contains — same image ids in the same order, scores equal to
the exact inner products up to BLAS kernel rounding.  The dense-row
surrogate also has to keep the stale-cache fallback honest: a cached
index row only answers a later request if it actually holds enough
finite entries for that request's ``top_k``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matcher import CrossEM, CrossEMConfig
from repro.obs import registry
from repro.serve import MatchService, ServeConfig
from repro.serve.deadline import Deadline


@pytest.fixture(scope="module")
def indexed_matcher(tiny_bundle, tiny_dataset):
    """A fitted matcher with an exhaustive-by-default tiny index: with
    nprobe >= nlist every search is bit-identical to brute force, so
    response equality checks are exact."""
    matcher = CrossEM(tiny_bundle, CrossEMConfig(prompt="hard", epochs=0,
                                                 seed=3))
    matcher.fit(tiny_dataset.graph, tiny_dataset.images,
                tiny_dataset.entity_vertices)
    from repro.index import IVFPQConfig

    matcher.build_index(IVFPQConfig(nlist=4, nprobe=4, pq_m=4, refine=8,
                                    seed=0))
    return matcher


@pytest.fixture()
def indexed_service(indexed_matcher):
    service = MatchService(indexed_matcher,
                           config=ServeConfig(capacity=4, workers=1)).warmup()
    yield service
    service.shutdown(timeout=5.0)


class TestIndexBackedResponses:
    def test_matches_identical_to_brute_service(self, indexed_matcher,
                                                indexed_service):
        vertex = indexed_matcher.vertex_ids[0]
        with_index = indexed_service.handle(
            {"id": 1, "vertex": vertex, "top_k": 3})
        assert with_index["ok"] and with_index["tier"] == "full"
        index = indexed_matcher.search_index
        indexed_matcher.detach_index()
        try:
            brute = MatchService(indexed_matcher,
                                 config=ServeConfig(capacity=4,
                                                    workers=1)).warmup()
            try:
                without = brute.handle(
                    {"id": 1, "vertex": vertex, "top_k": 3})
            finally:
                brute.shutdown(timeout=5.0)
        finally:
            indexed_matcher.attach_index(index)
        assert [m["image"] for m in with_index["matches"]] \
            == [m["image"] for m in without["matches"]]
        got = [m["score"] for m in with_index["matches"]]
        want = [m["score"] for m in without["matches"]]
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_index_telemetry_lands_in_registry(self, indexed_service,
                                               indexed_matcher):
        before = registry().counter("index.queries").value
        indexed_service.handle(
            {"id": 2, "vertex": indexed_matcher.vertex_ids[1], "top_k": 2})
        assert registry().counter("index.queries").value > before

    def test_scores_descend_and_ids_are_real(self, indexed_service,
                                             indexed_matcher):
        response = indexed_service.handle(
            {"id": 3, "vertex": indexed_matcher.vertex_ids[2], "top_k": 5})
        scores = [m["score"] for m in response["matches"]]
        assert scores == sorted(scores, reverse=True)
        assert len(response["matches"]) == 5
        image_ids = {img.image_id for img in indexed_matcher.images}
        assert all(m["image"] in image_ids for m in response["matches"])


class TestDenseRowSurrogate:
    def test_index_row_covers_k_floor_not_whole_repo(self, indexed_matcher,
                                                     indexed_service):
        """The surrogate row holds max(top_k, index_k_floor) finite
        entries — enough for cache reuse, far from a full GEMM row."""
        floor = indexed_service.config.index_k_floor
        row = indexed_service._score_full(
            indexed_matcher.vertex_ids[0], Deadline.unbounded(), 1)
        finite = int(np.isfinite(row).sum())
        assert finite == min(floor, len(indexed_matcher.images))

    def test_stale_covers_counts_finite_entries(self):
        row = np.full(10, -np.inf, dtype=np.float32)
        row[[1, 4, 6]] = 1.0
        assert MatchService._stale_covers(row, 3)
        assert not MatchService._stale_covers(row, 4)

    def test_stale_covers_clamps_to_row_width(self):
        row = np.ones(4, dtype=np.float32)
        assert MatchService._stale_covers(row, 100)

    def test_insufficient_stale_row_is_not_served(self, indexed_matcher):
        """A stale index row cached at small k must not answer a later
        degraded request wanting more matches than it holds."""
        config = ServeConfig(capacity=4, workers=1, index_k_floor=2)
        service = MatchService(indexed_matcher, config=config).warmup()
        try:
            vertex = indexed_matcher.vertex_ids[0]
            service.handle({"id": 1, "vertex": vertex, "top_k": 1})
            big = max(4, config.index_k_floor + 1)
            entry = service._stale_get(vertex)
            assert entry is not None
            assert not service._stale_covers(entry[0], big)
        finally:
            service.shutdown(timeout=5.0)
