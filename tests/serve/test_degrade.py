"""Degradation policy: which tier a request starts at, and why."""

from repro.serve import (LADDER, TIER_CACHED, TIER_FULL, TIER_STALE,
                         CircuitBreaker, Deadline, DegradationPolicy)
from .test_deadline import FakeClock


def make_policy(clock, **kwargs):
    breaker = CircuitBreaker("enc", window=4, failure_threshold=0.5,
                             min_calls=2, cooldown=10.0, clock=clock)
    return DegradationPolicy(breaker, **kwargs), breaker


class TestDegradationPolicy:
    def test_healthy_plan_is_the_full_ladder(self):
        clock = FakeClock()
        policy, _ = make_policy(clock)
        decision = policy.plan(Deadline.after(1.0, clock=clock))
        assert decision.tiers == LADDER
        assert decision.reason is None
        assert not decision.degraded

    def test_breaker_open_skips_full(self):
        clock = FakeClock()
        policy, breaker = make_policy(clock)
        breaker.force_open()
        decision = policy.plan(Deadline.unbounded(clock=clock))
        assert decision.tiers == (TIER_CACHED, TIER_STALE)
        assert decision.reason == "breaker_open"
        assert decision.degraded

    def test_deadline_pressure_skips_full(self):
        clock = FakeClock()
        policy, _ = make_policy(clock, full_floor=0.2)
        tight = Deadline.after(0.1, clock=clock)
        decision = policy.plan(tight)
        assert decision.tiers == (TIER_CACHED, TIER_STALE)
        assert decision.reason == "deadline_pressure"

    def test_floor_ignores_unbounded_deadlines(self):
        clock = FakeClock()
        policy, _ = make_policy(clock, full_floor=60.0)
        decision = policy.plan(Deadline.unbounded(clock=clock))
        assert decision.tiers[0] == TIER_FULL

    def test_half_open_probe_slot_allows_full(self):
        clock = FakeClock()
        policy, breaker = make_policy(clock)
        breaker.force_open()
        clock.advance(10.0)  # cooldown over: half-open, one probe free
        decision = policy.plan(Deadline.unbounded(clock=clock))
        assert decision.tiers[0] == TIER_FULL
