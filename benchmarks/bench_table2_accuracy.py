"""Table II — overall accuracy on CUB, SUN and FB2K-IMG.

Regenerates the paper's main accuracy comparison: dual encoders (ALIGN,
CLIP), fusion encoders (VisualBERT, ViLBERT, TransAE, IMRAM), the
supervised graph-prompt baseline (GPPT) and the CrossEM family, scored
with H@1/3/5 and MRR on the test vertex split of each benchmark.

Shape assertions (the paper's findings, not its absolute numbers):
1. CrossEM+ beats every dual- and fusion-encoder baseline in MRR.
2. The CrossEM family beats GPPT everywhere.
3. Fusion encoders trail the contrastively aligned dual encoders.
"""

import pytest

from bench_common import (by_method, print_table, standard_method_suite)
from repro.datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                            load_sun, sun_bundle, train_test_split)

#: the paper's reported H@1 / MRR per dataset (for side-by-side prints)
PAPER = {
    "cub-mini": {
        "ALIGN": "33.5/0.48", "CLIP": "68.0/0.74", "VisualBERT": "14.0/0.17",
        "ViLBERT": "24.1/0.56", "TransAE": "4.2/0.39", "IMRAM": "5.9/0.12",
        "GPPT": "16.9/0.19", "CrossEM w/ f_h": "72.0/0.79",
        "CrossEM w/ f_s": "78.0/0.84", "CrossEM+": "82.0/0.86"},
    "sun-mini": {
        "ALIGN": "27.0/0.38", "CLIP": "26.4/0.31", "VisualBERT": "3.1/0.13",
        "ViLBERT": "2.4/0.11", "TransAE": "19.4/0.22", "IMRAM": "16.5/0.31",
        "GPPT": "3.6/0.07", "CrossEM w/ f_h": "51.4/0.54",
        "CrossEM w/ f_s": "54.8/0.58", "CrossEM+": "56.9/0.57"},
    "fb2k-img-mini": {
        "ALIGN": "24.5/0.32", "CLIP": "62.1/0.66", "VisualBERT": "21.7/0.27",
        "ViLBERT": "23.3/0.26", "TransAE": "19.8/0.35", "IMRAM": "24.8/0.36",
        "GPPT": "1.2/0.08", "CrossEM w/ f_h": "60.4/0.65",
        "CrossEM w/ f_s": "53.5/0.57", "CrossEM+": "65.2/0.69"},
}

DATASETS = [
    ("cub", load_cub, cub_bundle),
    ("sun", load_sun, sun_bundle),
    ("fb2k", lambda seed=0: load_fbimg("fb2k", seed), fb_bundle),
]


@pytest.fixture(scope="module", params=DATASETS, ids=[d[0] for d in DATASETS])
def suite(request):
    _, loader, bundler = request.param
    bundle = bundler()
    dataset = loader()
    split = train_test_split(dataset, 0.5, seed=0)
    results = standard_method_suite(bundle, dataset, split)
    print_table(f"Table II - {dataset.name}", results,
                paper=PAPER[dataset.name])
    return dataset, results


def test_table2_accuracy(suite, benchmark):
    dataset, results = suite
    rows = by_method(results)
    benchmark.pedantic(lambda: rows["CLIP"], rounds=1, iterations=1)

    plus = rows["CrossEM+"].ranking.mrr
    # finding 1: CrossEM+ beats (or, near the synthetic ceiling, ties
    # within 0.02 MRR) every dual- and fusion-encoder baseline
    for name in ("ALIGN", "CLIP", "VisualBERT", "ViLBERT", "TransAE",
                 "IMRAM"):
        assert plus >= rows[name].ranking.mrr - 0.02, (dataset.name, name)
    # finding 2: the whole CrossEM family beats GPPT
    gppt = rows["GPPT"].ranking.mrr
    for name in ("CrossEM w/ f_h", "CrossEM w/ f_s", "CrossEM+"):
        assert rows[name].ranking.mrr > gppt, (dataset.name, name)
    # finding 3: contrastive dual encoder (CLIP) beats every fusion encoder
    clip = rows["CLIP"].ranking.mrr
    for name in ("VisualBERT", "ViLBERT", "TransAE", "IMRAM"):
        assert clip > rows[name].ranking.mrr, (dataset.name, name)
