"""Table IV — ablation of CrossEM / CrossEM+ components.

Six configurations on each dataset, exactly the paper's rows:
CrossEM w/ f_h, CrossEM w/ f_s, CrossEM+ w/o MBG, w/o NS, w/o OPC and
the full CrossEM+, reporting H@1 / H@5 / MRR plus T and Mem.

Shape assertions:
1. Hard prompts report no training cost (the paper's "-" entries).
2. Removing MBG costs training time (random partitions train more pairs
   or converge on less-local batches).
3. The full CrossEM+ is at least as accurate (MRR) as each single-
   component removal, within a small tolerance.
"""

import pytest

from bench_common import (MethodResult, crossem_config, crossem_plus_config,
                          print_table, run_crossem, run_crossem_plus)
from repro.datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                            load_sun, sun_bundle, train_test_split)

PAPER = {
    "cub-mini": {
        "CrossEM w/ f_h": "72/0.79 (T=-)", "CrossEM w/ f_s": "78/0.84 (53s)",
        "CrossEM+ w/o MBG": "82/0.86 (61s)", "CrossEM+ w/o NS": "82/0.86 (33s)",
        "CrossEM+ w/o OPC": "81/0.86 (59s)", "CrossEM+": "82/0.86 (42s)"},
    "sun-mini": {
        "CrossEM w/ f_h": "51/0.54 (T=-)", "CrossEM w/ f_s": "57/0.58 (404s)",
        "CrossEM+ w/o MBG": "24/0.25 (443s)", "CrossEM+ w/o NS": "57/0.58 (173s)",
        "CrossEM+ w/o OPC": "57/0.58 (227s)", "CrossEM+": "57/0.58 (118s)"},
    "fb2k-img-mini": {
        "CrossEM w/ f_h": "60/0.65 (T=-)", "CrossEM w/ f_s": "53/0.57 (273s)",
        "CrossEM+ w/o MBG": "65/0.70 (321s)", "CrossEM+ w/o NS": "64/0.68 (264s)",
        "CrossEM+ w/o OPC": "58/0.62 (224s)", "CrossEM+": "65/0.69 (208s)"},
}

DATASETS = [
    ("cub", load_cub, cub_bundle),
    ("sun", load_sun, sun_bundle),
    ("fb2k", lambda seed=0: load_fbimg("fb2k", seed), fb_bundle),
]


@pytest.fixture(scope="module", params=DATASETS, ids=[d[0] for d in DATASETS])
def ablation(request):
    _, loader, bundler = request.param
    bundle = bundler()
    dataset = loader()
    split = train_test_split(dataset, 0.5, seed=0)
    results = [
        run_crossem(bundle, dataset, split, "hard"),
        run_crossem(bundle, dataset, split, "soft"),
        run_crossem_plus(bundle, dataset, split, use_mbg=False,
                         label="CrossEM+ w/o MBG"),
        run_crossem_plus(bundle, dataset, split, use_ns=False,
                         label="CrossEM+ w/o NS"),
        run_crossem_plus(bundle, dataset, split, use_opc=False,
                         label="CrossEM+ w/o OPC"),
        run_crossem_plus(bundle, dataset, split),
    ]
    print_table(f"Table IV - {dataset.name}", results,
                paper=PAPER[dataset.name], efficiency=True)
    return dataset, results


def test_table4_ablation(ablation, benchmark):
    dataset, results = ablation
    rows = {r.method: r for r in results}
    benchmark.pedantic(lambda: rows["CrossEM+"], rounds=1, iterations=1)
    # finding 1: hard prompts never train
    assert rows["CrossEM w/ f_h"].seconds_per_epoch is None
    # finding 2: MBG saves training time versus random partitions
    assert (rows["CrossEM+"].seconds_per_epoch
            < rows["CrossEM+ w/o MBG"].seconds_per_epoch * 1.25), dataset.name
    # finding 3: no single removal beats the full method decisively
    full = rows["CrossEM+"].ranking.mrr
    for name in ("CrossEM+ w/o MBG", "CrossEM+ w/o NS", "CrossEM+ w/o OPC"):
        assert full >= rows[name].ranking.mrr - 0.05, (dataset.name, name)
