"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper:
it builds the benchmark datasets, fits every method, prints the rows the
paper reports (paper value next to measured value where applicable) and
asserts the qualitative *shape* — who wins, roughly by how much — while
``pytest-benchmark`` records the timing of a representative unit.

Heavy work runs once inside module-scoped fixtures; ``benchmark.pedantic``
with a single round wraps the representative call so the harness never
re-trains models dozens of times.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import (ALIGNZeroShot, CLIPZeroShot, GPPTMatcher,
                             IMRAMMatcher, TransAEMatcher, ViLBERTMatcher,
                             VisualBERTMatcher)
from repro.clip.zoo import PretrainedBundle
from repro.obs import format_profile
from repro.core import (CrossEM, CrossEMConfig, CrossEMPlus,
                        CrossEMPlusConfig, RankingResult)
from repro.datasets import CrossModalDataset, VertexSplit, train_test_split

#: training epochs for the tuned methods across all benches
TUNE_EPOCHS = 10
TUNE_LR = 1e-3


@dataclasses.dataclass
class MethodResult:
    """One table row: accuracy plus (optional) efficiency numbers."""

    method: str
    ranking: RankingResult
    seconds_per_epoch: Optional[float] = None
    peak_memory_mb: Optional[float] = None


def crossem_config(prompt: str, dataset: CrossModalDataset,
                   seed: int = 0) -> CrossEMConfig:
    aggregator = "sage" if "fb" in dataset.name else "gnn"
    return CrossEMConfig(prompt=prompt, epochs=TUNE_EPOCHS, lr=TUNE_LR,
                         aggregator=aggregator, seed=seed)


def crossem_plus_config(dataset: CrossModalDataset, seed: int = 0,
                        **overrides) -> CrossEMPlusConfig:
    aggregator = "sage" if "fb" in dataset.name else "gnn"
    return CrossEMPlusConfig(prompt="soft", epochs=TUNE_EPOCHS, lr=TUNE_LR,
                             aggregator=aggregator, seed=seed, **overrides)


def run_crossem(bundle: PretrainedBundle, dataset: CrossModalDataset,
                split: VertexSplit, prompt: str,
                seed: int = 0) -> MethodResult:
    matcher = CrossEM(bundle, crossem_config(prompt, dataset, seed))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    label = {"baseline": "CLIP (naive prompt)", "hard": "CrossEM w/ f_h",
             "soft": "CrossEM w/ f_s"}[prompt]
    return MethodResult(label, matcher.evaluate(dataset, list(split.test)),
                        matcher.efficiency.seconds_per_epoch or None,
                        matcher.efficiency.peak_memory_mb or None)


def run_crossem_plus(bundle: PretrainedBundle, dataset: CrossModalDataset,
                     split: VertexSplit, seed: int = 0,
                     label: str = "CrossEM+", **overrides) -> MethodResult:
    matcher = CrossEMPlus(bundle,
                          crossem_plus_config(dataset, seed, **overrides))
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    return MethodResult(label, matcher.evaluate(dataset, list(split.test)),
                        matcher.efficiency.seconds_per_epoch,
                        matcher.efficiency.peak_memory_mb)


def run_baseline(matcher, dataset: CrossModalDataset,
                 split: VertexSplit) -> MethodResult:
    matcher.fit(dataset, split)
    return MethodResult(matcher.name,
                        matcher.evaluate(dataset, list(split.test)))


def standard_method_suite(bundle: PretrainedBundle,
                          dataset: CrossModalDataset,
                          split: VertexSplit,
                          include_align: bool = True) -> List[MethodResult]:
    """The Table II method roster, fitted and evaluated on ``dataset``."""
    results: List[MethodResult] = []
    if include_align:
        results.append(run_baseline(ALIGNZeroShot(bundle), dataset, split))
    results.append(run_baseline(CLIPZeroShot(bundle), dataset, split))
    for cls in (VisualBERTMatcher, ViLBERTMatcher, TransAEMatcher,
                IMRAMMatcher):
        results.append(run_baseline(cls(bundle, seed=0), dataset, split))
    results.append(run_baseline(GPPTMatcher(bundle, seed=0), dataset, split))
    results.append(run_crossem(bundle, dataset, split, "hard"))
    results.append(run_crossem(bundle, dataset, split, "soft"))
    results.append(run_crossem_plus(bundle, dataset, split))
    return results


def print_table(title: str, results: Sequence[MethodResult],
                paper: Optional[Dict[str, str]] = None,
                efficiency: bool = False) -> None:
    """Render one results table to stdout (captured in bench logs)."""
    print(f"\n=== {title} ===")
    header = f"{'method':24s} {'H@1':>6s} {'H@3':>6s} {'H@5':>6s} {'MRR':>6s}"
    if efficiency:
        header += f" {'T(s/ep)':>8s} {'Mem(MB)':>8s}"
    if paper is not None:
        header += "   paper(H@1/MRR)"
    print(header)
    for row in results:
        r = row.ranking
        line = (f"{row.method:24s} {r.hits1:6.2f} {r.hits3:6.2f} "
                f"{r.hits5:6.2f} {r.mrr:6.3f}")
        if efficiency:
            t = f"{row.seconds_per_epoch:.2f}" if row.seconds_per_epoch else "-"
            m = f"{row.peak_memory_mb:.1f}" if row.peak_memory_mb else "-"
            line += f" {t:>8s} {m:>8s}"
        if paper is not None:
            line += f"   {paper.get(row.method, '-')}"
        print(line)
    print_span_profile(f"{title} — span profile")


def print_span_profile(title: str = "span profile") -> None:
    """Emit the run-so-far hierarchical span profile (skipped when no
    spans were recorded, e.g. under ``REPRO_TELEMETRY=0``)."""
    report = format_profile()
    if report:
        print(f"\n--- {title} ---")
        print(report)


def by_method(results: Sequence[MethodResult]) -> Dict[str, MethodResult]:
    return {r.method: r for r in results}
