"""Figure 8 — scalability over FB2K / FB6K / FB10K-IMG.

The paper scales the candidate-pair count (54M → 284M → 755M; here the
miniature series grows 32K → 128K → 288K) and plots MRR, per-epoch
training time and peak memory for CrossEM w/ f_s versus CrossEM+.

Shape assertions (the paper's two findings):
1. At every scale, CrossEM+ trains faster and peaks no higher in memory
   than CrossEM w/ f_s.
2. Training time grows more slowly for CrossEM+ — its time ratio from
   the smallest to the largest dataset is smaller than CrossEM's.
"""

import pytest

from bench_common import crossem_config, crossem_plus_config
from repro.core import CrossEM, CrossEMPlus
from repro.datasets import FB_SIZES, fb_bundle, load_fbimg, train_test_split

SCALE_EPOCHS = 3  # the sweep trains 6 models; keep per-model cost bounded


@pytest.fixture(scope="module")
def sweep():
    bundle = fb_bundle()
    series = []
    for size in FB_SIZES:
        dataset = load_fbimg(size)
        split = train_test_split(dataset, 0.5, seed=0)
        config_s = crossem_config("soft", dataset)
        config_s.epochs = SCALE_EPOCHS
        soft = CrossEM(bundle, config_s)
        soft.fit(dataset.graph, dataset.images, dataset.entity_vertices)
        config_p = crossem_plus_config(dataset)
        config_p.epochs = SCALE_EPOCHS
        plus = CrossEMPlus(bundle, config_p)
        plus.fit(dataset.graph, dataset.images, dataset.entity_vertices)
        series.append({
            "size": size,
            "pairs": dataset.num_candidate_pairs,
            "soft_mrr": soft.evaluate(dataset, split.test).mrr,
            "plus_mrr": plus.evaluate(dataset, split.test).mrr,
            "soft_t": soft.efficiency.seconds_per_epoch,
            "plus_t": plus.efficiency.seconds_per_epoch,
            "soft_mem": soft.efficiency.peak_memory_mb,
            "plus_mem": plus.efficiency.peak_memory_mb,
        })
    print("\n=== Figure 8 - scalability on FB15K-IMG series ===")
    print(f"{'size':>6s} {'pairs':>8s} | {'MRR soft':>8s} {'MRR plus':>8s} | "
          f"{'T soft':>7s} {'T plus':>7s} | {'Mem soft':>8s} {'Mem plus':>8s}")
    for row in series:
        print(f"{row['size']:>6s} {row['pairs']:>8d} | "
              f"{row['soft_mrr']:>8.3f} {row['plus_mrr']:>8.3f} | "
              f"{row['soft_t']:>7.2f} {row['plus_t']:>7.2f} | "
              f"{row['soft_mem']:>8.1f} {row['plus_mem']:>8.1f}")
    return series


def test_fig8_scalability(sweep, benchmark):
    benchmark.pedantic(lambda: sweep[-1]["plus_t"], rounds=1, iterations=1)
    for row in sweep:
        # finding 1: CrossEM+ is cheaper at every scale
        assert row["plus_t"] < row["soft_t"], row["size"]
        assert row["plus_mem"] <= row["soft_mem"] * 1.05, row["size"]
    # finding 2: CrossEM+'s time grows more slowly with data size
    soft_growth = sweep[-1]["soft_t"] / sweep[0]["soft_t"]
    plus_growth = sweep[-1]["plus_t"] / sweep[0]["plus_t"]
    assert plus_growth < soft_growth
