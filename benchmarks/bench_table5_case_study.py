"""Table V — case study: multi-modal knowledge graph integration.

On the FB-IMG benchmark, frame entity-image integration as ranking the
image repository per entity, train the KG-completion competitors on the
train split's entity-image links, and compare against the unsupervised
CrossEM family (which never sees gold links).

Shape assertions (the paper's findings):
1. Every CrossEM variant beats every KG-completion baseline in MRR on
   the held-out (zero-link) test entities.
2. CrossEM+ is the best method overall.
"""

import pytest

from bench_common import (MethodResult, print_table, run_baseline,
                          run_crossem, run_crossem_plus)
from repro.baselines import (DistMultKG, MKGformerLite, RSMEKG, RotatEKG,
                             TransAEMatcher, ViLBERTMatcher)
from repro.datasets import fb_bundle, load_fbimg, train_test_split

PAPER = {
    "ViLBERT": "23.3/0.21", "TransAE": "19.9/0.23", "DistMult": "19.1/0.21",
    "RotatE": "24.1/0.56", "RSME": "24.2/0.24", "MKGformer": "25.6/0.45",
    "CrossEM w/ f_h": "60.4/0.65", "CrossEM w/ f_s": "53.5/0.57",
    "CrossEM+": "65.2/0.69",
}


@pytest.fixture(scope="module")
def case_study():
    bundle = fb_bundle()
    dataset = load_fbimg("fb2k")
    split = train_test_split(dataset, 0.5, seed=0)
    results = [
        run_baseline(ViLBERTMatcher(bundle, seed=0), dataset, split),
        run_baseline(TransAEMatcher(bundle, seed=0), dataset, split),
        run_baseline(DistMultKG(bundle, seed=0), dataset, split),
        run_baseline(RotatEKG(bundle, seed=0), dataset, split),
        run_baseline(RSMEKG(bundle, seed=0), dataset, split),
        run_baseline(MKGformerLite(bundle, seed=0), dataset, split),
        run_crossem(bundle, dataset, split, "hard"),
        run_crossem(bundle, dataset, split, "soft"),
        run_crossem_plus(bundle, dataset, split),
    ]
    print_table("Table V - multi-modal KG integration (fb2k)", results,
                paper=PAPER)
    return results


def test_table5_case_study(case_study, benchmark):
    rows = {r.method: r for r in case_study}
    benchmark.pedantic(lambda: rows["CrossEM+"], rounds=1, iterations=1)
    kg_methods = ("ViLBERT", "TransAE", "DistMult", "RotatE", "RSME",
                  "MKGformer")
    crossem_methods = ("CrossEM w/ f_h", "CrossEM w/ f_s", "CrossEM+")
    # finding 1: cross-modal EM beats KG completion on unseen entities
    best_kg = max(rows[m].ranking.mrr for m in kg_methods)
    for name in crossem_methods:
        assert rows[name].ranking.mrr > best_kg, name
    # finding 2: CrossEM+ is best overall
    best_all = max(rows[m].ranking.mrr for m in rows)
    assert rows["CrossEM+"].ranking.mrr == pytest.approx(best_all)
