#!/usr/bin/env python
"""Hot-path micro-benchmarks for the fused encoder pipeline.

Times every optimized path against the naive reference it replaced
(both are kept in the tree — the references double as golden oracles in
the equivalence tests) and writes the speedups to ``BENCH_hotpaths.json``
at the repository root.

Modes
-----
``--quick``
    Tiny bird bundle (the test-suite bundle) — seconds, suitable for a
    CI smoke job.
default (full)
    Figure 8 scalability sizes (FB10K-IMG, 240-concept entity bundle) —
    the scale at which the paper's efficiency claims are made.

``--baseline PATH`` compares the measured *speedups* (not absolute
seconds, so the check is machine-independent) against a committed
baseline JSON and exits non-zero if any path regressed by more than
``--tolerance`` (default 2x).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import nn  # noqa: E402
from repro.clip.pretrain import PretrainConfig  # noqa: E402
from repro.clip.zoo import get_pretrained_bundle  # noqa: E402
from repro.core.matcher import CrossEM, CrossEMConfig  # noqa: E402
from repro.core.minibatch import (kmeans, kmeans_reference,  # noqa: E402
                                  pairwise_proximity,
                                  pairwise_proximity_reference,
                                  property_closeness)
from repro.datasets import fb_bundle, load_fbimg  # noqa: E402
from repro.datasets.generator import build_attribute_dataset  # noqa: E402
from repro.obs import format_profile, span  # noqa: E402
from repro.text.corpus import build_text_corpus  # noqa: E402

#: pre-training recipe for the quick-mode bundle (mirrors the test suite
#: so CI reuses the same disk-cached bundle the tier-1 job just built)
QUICK_CONFIG = PretrainConfig(epochs=20, batch_size=16,
                              captions_per_concept=6, seed=7)


def _best_of(fn, repeats: int, label: str) -> float:
    """Best-of-N wall time; the min is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        with span(f"bench/{label}") as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def _bench_pair(name: str, optimized, reference, repeats: int) -> dict:
    optimized()  # warm both paths (caches, allocator, BLAS threads)
    reference()
    opt = _best_of(optimized, repeats, f"{name}/optimized")
    ref = _best_of(reference, repeats, f"{name}/reference")
    entry = {"optimized_s": opt, "reference_s": ref,
             "speedup": ref / opt if opt > 0 else float("inf")}
    print(f"  {name:28s} {opt * 1e3:9.2f} ms vs {ref * 1e3:9.2f} ms "
          f"-> {entry['speedup']:6.2f}x")
    return entry


def _load_scene(quick: bool):
    if quick:
        bundle = get_pretrained_bundle(kind="bird", num_concepts=16, seed=7,
                                       config=QUICK_CONFIG)
        dataset = build_attribute_dataset(bundle.universe, name="bench-tiny",
                                          concept_indices=range(10),
                                          images_per_concept=2, seed=7)
    else:
        bundle = fb_bundle()
        dataset = load_fbimg("fb10k")
    return bundle, dataset


def run(quick: bool, repeats: int) -> dict:
    bundle, dataset = _load_scene(quick)
    mode = "quick" if quick else "full"
    print(f"mode={mode} dataset={dataset.name} "
          f"vertices={len(dataset.entity_vertices)} "
          f"images={len(dataset.images)}")
    results: dict = {"mode": mode, "dataset": dataset.name,
                     "num_vertices": len(dataset.entity_vertices),
                     "num_images": len(dataset.images), "paths": {}}
    paths = results["paths"]

    graph, vertices = dataset.graph, dataset.entity_vertices
    properties, patches = property_closeness(graph, vertices, dataset.images,
                                             bundle.minilm, bundle.aligner)

    paths["pairwise_proximity"] = _bench_pair(
        "pairwise_proximity",
        lambda: pairwise_proximity(graph, vertices, properties, patches),
        lambda: pairwise_proximity_reference(graph, vertices, properties,
                                             patches),
        repeats)

    proximity = pairwise_proximity(graph, vertices, properties, patches)
    k = min(8, max(2, len(vertices) // 8))
    paths["kmeans"] = _bench_pair(
        "kmeans",
        lambda: kmeans(proximity, k, rng=0),
        lambda: kmeans_reference(proximity, k, rng=0),
        repeats)

    corpus = build_text_corpus(bundle.universe, seed=7)
    texts = corpus[:400] if quick else corpus
    paths["embed_texts"] = _bench_pair(
        "embed_texts",
        lambda: bundle.minilm.embed_texts(texts),
        lambda: bundle.minilm.embed_texts_reference(texts),
        repeats)

    cooc_texts = corpus[:120] if quick else corpus[:600]
    paths["pretrain_cooccurrence"] = _bench_pair(
        "pretrain_cooccurrence",
        lambda: bundle.minilm._cooccurrence(cooc_texts),
        lambda: bundle.minilm._cooccurrence_reference(cooc_texts),
        repeats)

    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(graph, dataset.images, vertices)
    matcher.score()  # populate both caches

    def _reference_epoch():
        chunks = [matcher.encode_vertices_reference(
            matcher.vertex_ids[s:s + 32]).numpy()
            for s in range(0, len(matcher.vertex_ids), 32)]
        return np.concatenate(chunks, axis=0)

    with nn.no_grad():
        paths["hard_prompt_epoch"] = _bench_pair(
            "hard_prompt_epoch",
            lambda: matcher._encode_all_vertices(),
            _reference_epoch,
            repeats)

    image_indices = list(range(len(matcher.images)))
    pixel_stack = lambda s, e: np.stack(
        [matcher.images[i].pixels for i in range(s, e)])

    def _reference_images():
        with nn.no_grad():
            chunks = [matcher.clip.encode_image(
                pixel_stack(s, min(s + 64, len(image_indices)))).numpy()
                for s in range(0, len(image_indices), 64)]
        return np.concatenate(chunks, axis=0)

    paths["image_encode"] = _bench_pair(
        "image_encode",
        lambda: matcher._encode_images(image_indices).numpy(),
        _reference_images,
        repeats)

    return results


#: speedups beyond this are "saturated" — the optimized path is a cache
#: hit measured in microseconds, where timer noise swamps the ratio; the
#: regression check clamps both sides here so saturated paths only fail
#: when they stop being effectively free.
SATURATION_CAP = 50.0


def compare_baseline(results: dict, baseline_path: Path,
                     tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, entry in baseline.get("paths", {}).items():
        current = results["paths"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = (min(entry["speedup"], SATURATION_CAP)
                 / max(min(current["speedup"], SATURATION_CAP), 1e-12))
        flag = "REGRESSED" if ratio > tolerance else "ok"
        print(f"  {name:28s} baseline {entry['speedup']:6.2f}x "
              f"now {current['speedup']:6.2f}x ({flag})")
        if ratio > tolerance:
            failures.append(
                f"{name}: speedup fell {ratio:.2f}x below baseline "
                f"({entry['speedup']:.2f}x -> {current['speedup']:.2f}x)")
    if failures:
        print("\nbenchmark regression check FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nbenchmark regression check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny bundle, CI-smoke scale")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_hotpaths.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline JSON to compare speedups "
                             "against")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="fail when a speedup falls this many times "
                             "below its baseline value")
    parser.add_argument("--profile", action="store_true",
                        help="print the telemetry span profile at the end")
    args = parser.parse_args(argv)

    results = run(args.quick, args.repeats)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.baseline is not None:
        print(f"\ncomparing against baseline {args.baseline}")
        status = compare_baseline(results, args.baseline, args.tolerance)
    if args.profile:
        report = format_profile()
        if report:
            print("\n--- span profile ---")
            print(report)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
