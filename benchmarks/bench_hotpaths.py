#!/usr/bin/env python
"""Hot-path micro-benchmarks for the fused encoder pipeline.

Times every optimized path against the naive reference it replaced
(both are kept in the tree — the references double as golden oracles in
the equivalence tests) and writes the speedups to ``BENCH_hotpaths.json``
at the repository root.

Modes
-----
``--quick``
    Tiny bird bundle (the test-suite bundle) — seconds, suitable for a
    CI smoke job.
default (full)
    Figure 8 scalability sizes (FB10K-IMG, 240-concept entity bundle) —
    the scale at which the paper's efficiency claims are made.

``--baseline PATH`` compares the measured *speedups* (not absolute
seconds, so the check is machine-independent) against a committed
baseline JSON and exits non-zero if any path regressed by more than
``--tolerance`` (default 2x).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import nn  # noqa: E402
from repro.index import (IVFPQConfig, build_ivfpq,  # noqa: E402
                         deterministic_topk_rows)
from repro.clip.pretrain import PretrainConfig  # noqa: E402
from repro.clip.zoo import get_pretrained_bundle  # noqa: E402
from repro.core.matcher import CrossEM, CrossEMConfig  # noqa: E402
from repro.core.minibatch import (kmeans, kmeans_reference,  # noqa: E402
                                  pairwise_proximity,
                                  pairwise_proximity_reference,
                                  property_closeness)
from repro.datasets import fb_bundle, load_fbimg  # noqa: E402
from repro.datasets.generator import build_attribute_dataset  # noqa: E402
from repro.obs import format_profile, span  # noqa: E402
from repro.text.corpus import build_text_corpus  # noqa: E402

#: pre-training recipe for the quick-mode bundle (mirrors the test suite
#: so CI reuses the same disk-cached bundle the tier-1 job just built)
QUICK_CONFIG = PretrainConfig(epochs=20, batch_size=16,
                              captions_per_concept=6, seed=7)


def _best_of(fn, repeats: int, label: str) -> float:
    """Best-of-N wall time; the min is the least noisy point estimate."""
    best = float("inf")
    for _ in range(repeats):
        with span(f"bench/{label}") as timer:
            fn()
        best = min(best, timer.elapsed)
    return best


def _bench_pair(name: str, optimized, reference, repeats: int) -> dict:
    optimized()  # warm both paths (caches, allocator, BLAS threads)
    reference()
    opt = _best_of(optimized, repeats, f"{name}/optimized")
    ref = _best_of(reference, repeats, f"{name}/reference")
    entry = {"optimized_s": opt, "reference_s": ref,
             "speedup": ref / opt if opt > 0 else float("inf")}
    print(f"  {name:28s} {opt * 1e3:9.2f} ms vs {ref * 1e3:9.2f} ms "
          f"-> {entry['speedup']:6.2f}x")
    return entry


def _load_scene(quick: bool):
    if quick:
        bundle = get_pretrained_bundle(kind="bird", num_concepts=16, seed=7,
                                       config=QUICK_CONFIG)
        dataset = build_attribute_dataset(bundle.universe, name="bench-tiny",
                                          concept_indices=range(10),
                                          images_per_concept=2, seed=7)
    else:
        bundle = fb_bundle()
        dataset = load_fbimg("fb10k")
    return bundle, dataset


def _synthetic_world(num_images: int, dim: int, num_concepts: int,
                     num_queries: int, seed: int = 0):
    """Clustered unit-norm embeddings mimicking a frozen image tower.

    Images scatter around shared concept centres with noise small
    enough (sigma * sqrt(dim) < 1) that the concept structure survives
    normalization — the regime IVF's coarse cells exploit.  Queries are
    drawn around the same centres, like text prompts for seen concepts.
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_concepts, dim)).astype(np.float32)
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    owner = rng.integers(0, num_concepts, size=num_images)
    images = centers[owner] + 0.08 * rng.standard_normal(
        (num_images, dim)).astype(np.float32)
    images /= np.linalg.norm(images, axis=1, keepdims=True)
    probe = centers[rng.integers(0, num_concepts, size=num_queries)]
    queries = probe + 0.06 * rng.standard_normal(
        (num_queries, dim)).astype(np.float32)
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return np.ascontiguousarray(images), np.ascontiguousarray(queries)


#: the operating point reported as the headline ``index`` path — chosen
#: from the sweep below as the smallest nprobe holding recall@10 >= 0.95
HEADLINE_NPROBE = 4


def bench_index(quick: bool, repeats: int, paths: dict) -> None:
    """Recall@k-vs-speedup sweep: IVF-PQ search against the brute GEMM.

    The brute side is exactly what ``match_pairs`` runs without an
    index (one ``queries @ images.T`` GEMM + deterministic top-k); the
    optimized side is ``IVFPQIndex.search`` at each ``nprobe``.  Every
    sweep point lands in the report as ``index_nprobe<n>`` with both
    ``speedup`` and ``recall_loss_at10`` (= 1 - recall@10), so the obs
    differ can gate accuracy and speed from the same artifact.
    """
    k = 10
    if quick:
        images, queries = _synthetic_world(20_000, 64, 256, 64)
        config = IVFPQConfig(nlist=128, nprobe=HEADLINE_NPROBE, pq_m=16,
                             refine=16, train_sample=8192,
                             kmeans_iterations=10)
        sweep = (1, 2, 4, 8)
    else:
        images, queries = _synthetic_world(120_000, 64, 1024, 128)
        config = IVFPQConfig(nlist=512, nprobe=HEADLINE_NPROBE, pq_m=16,
                             refine=16, train_sample=32_768)
        sweep = (1, 2, 4, 8, 16)
    print(f"  index world: {images.shape[0]} images x {images.shape[1]}d, "
          f"{queries.shape[0]} queries, k={k}")

    def brute():
        scores = queries @ images.T
        order = deterministic_topk_rows(scores, k)
        return order, np.take_along_axis(scores, order, axis=1)

    oracle_ids, _ = brute()
    brute()  # warm BLAS
    reference_s = _best_of(brute, repeats, "index/brute")

    with span("bench/index/build") as timer:
        index = build_ivfpq(images, config)
    print(f"  index build: {timer.elapsed:.2f} s "
          f"(nlist={config.nlist}, pq_m={config.pq_m})")
    paths["index_build"] = {"build_s": timer.elapsed}

    oracle_sets = [set(row.tolist()) for row in oracle_ids]
    for nprobe in sweep:
        index.search(queries, k, nprobe=nprobe)  # warm
        optimized_s = _best_of(
            lambda: index.search(queries, k, nprobe=nprobe),
            repeats, f"index/nprobe{nprobe}")
        result = index.search(queries, k, nprobe=nprobe)
        hits = sum(len(oracle_sets[q] & set(result.ids[q].tolist()))
                   for q in range(len(oracle_sets)))
        recall = hits / (len(oracle_sets) * k)
        entry = {"optimized_s": optimized_s, "reference_s": reference_s,
                 "speedup": reference_s / optimized_s,
                 "recall_at10": recall,
                 "recall_loss_at10": 1.0 - recall}
        paths[f"index_nprobe{nprobe}"] = entry
        print(f"  index nprobe={nprobe:<3d} {optimized_s * 1e3:9.2f} ms vs "
              f"{reference_s * 1e3:9.2f} ms -> {entry['speedup']:6.2f}x "
              f"@ recall@10 {recall:.3f}")
    paths["index"] = dict(paths[f"index_nprobe{HEADLINE_NPROBE}"])


def run(quick: bool, repeats: int, index_only: bool = False) -> dict:
    mode = "quick" if quick else "full"
    if index_only:
        results = {"mode": mode, "dataset": "synthetic-index-world",
                   "paths": {}}
        print(f"mode={mode} (index sweep only)")
        bench_index(quick, repeats, results["paths"])
        return results
    bundle, dataset = _load_scene(quick)
    print(f"mode={mode} dataset={dataset.name} "
          f"vertices={len(dataset.entity_vertices)} "
          f"images={len(dataset.images)}")
    results: dict = {"mode": mode, "dataset": dataset.name,
                     "num_vertices": len(dataset.entity_vertices),
                     "num_images": len(dataset.images), "paths": {}}
    paths = results["paths"]

    graph, vertices = dataset.graph, dataset.entity_vertices
    properties, patches = property_closeness(graph, vertices, dataset.images,
                                             bundle.minilm, bundle.aligner)

    paths["pairwise_proximity"] = _bench_pair(
        "pairwise_proximity",
        lambda: pairwise_proximity(graph, vertices, properties, patches),
        lambda: pairwise_proximity_reference(graph, vertices, properties,
                                             patches),
        repeats)

    proximity = pairwise_proximity(graph, vertices, properties, patches)
    k = min(8, max(2, len(vertices) // 8))
    paths["kmeans"] = _bench_pair(
        "kmeans",
        lambda: kmeans(proximity, k, rng=0),
        lambda: kmeans_reference(proximity, k, rng=0),
        repeats)

    corpus = build_text_corpus(bundle.universe, seed=7)
    texts = corpus[:400] if quick else corpus
    paths["embed_texts"] = _bench_pair(
        "embed_texts",
        lambda: bundle.minilm.embed_texts(texts),
        lambda: bundle.minilm.embed_texts_reference(texts),
        repeats)

    cooc_texts = corpus[:120] if quick else corpus[:600]
    paths["pretrain_cooccurrence"] = _bench_pair(
        "pretrain_cooccurrence",
        lambda: bundle.minilm._cooccurrence(cooc_texts),
        lambda: bundle.minilm._cooccurrence_reference(cooc_texts),
        repeats)

    matcher = CrossEM(bundle, CrossEMConfig(prompt="hard", epochs=0))
    matcher.fit(graph, dataset.images, vertices)
    matcher.score()  # populate both caches

    def _reference_epoch():
        chunks = [matcher.encode_vertices_reference(
            matcher.vertex_ids[s:s + 32]).numpy()
            for s in range(0, len(matcher.vertex_ids), 32)]
        return np.concatenate(chunks, axis=0)

    with nn.no_grad():
        paths["hard_prompt_epoch"] = _bench_pair(
            "hard_prompt_epoch",
            lambda: matcher._encode_all_vertices(),
            _reference_epoch,
            repeats)

    image_indices = list(range(len(matcher.images)))
    pixel_stack = lambda s, e: np.stack(
        [matcher.images[i].pixels for i in range(s, e)])

    def _reference_images():
        with nn.no_grad():
            chunks = [matcher.clip.encode_image(
                pixel_stack(s, min(s + 64, len(image_indices)))).numpy()
                for s in range(0, len(image_indices), 64)]
        return np.concatenate(chunks, axis=0)

    paths["image_encode"] = _bench_pair(
        "image_encode",
        lambda: matcher._encode_images(image_indices).numpy(),
        _reference_images,
        repeats)

    bench_index(quick, repeats, paths)

    return results


#: speedups beyond this are "saturated" — the optimized path is a cache
#: hit measured in microseconds, where timer noise swamps the ratio; the
#: regression check clamps both sides here so saturated paths only fail
#: when they stop being effectively free.
SATURATION_CAP = 50.0


def compare_baseline(results: dict, baseline_path: Path,
                     tolerance: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, entry in baseline.get("paths", {}).items():
        if "speedup" not in entry:  # e.g. index_build reports only build_s
            continue
        current = results["paths"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = (min(entry["speedup"], SATURATION_CAP)
                 / max(min(current["speedup"], SATURATION_CAP), 1e-12))
        flag = "REGRESSED" if ratio > tolerance else "ok"
        print(f"  {name:28s} baseline {entry['speedup']:6.2f}x "
              f"now {current['speedup']:6.2f}x ({flag})")
        if ratio > tolerance:
            failures.append(
                f"{name}: speedup fell {ratio:.2f}x below baseline "
                f"({entry['speedup']:.2f}x -> {current['speedup']:.2f}x)")
    if failures:
        print("\nbenchmark regression check FAILED:")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nbenchmark regression check passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny bundle, CI-smoke scale")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_hotpaths.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline JSON to compare speedups "
                             "against")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="fail when a speedup falls this many times "
                             "below its baseline value")
    parser.add_argument("--profile", action="store_true",
                        help="print the telemetry span profile at the end")
    parser.add_argument("--index-only", action="store_true",
                        help="run only the ANN index sweep (CI index job)")
    parser.add_argument("--recall-floor", type=float, default=None,
                        metavar="R",
                        help="fail if the headline index recall@10 falls "
                             "below this")
    args = parser.parse_args(argv)

    results = run(args.quick, args.repeats, index_only=args.index_only)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    status = 0
    if args.recall_floor is not None:
        recall = results["paths"]["index"]["recall_at10"]
        if recall < args.recall_floor:
            print(f"\nrecall floor FAILED: headline recall@10 {recall:.3f} "
                  f"< {args.recall_floor}")
            status = 1
        else:
            print(f"\nrecall floor ok: headline recall@10 {recall:.3f} "
                  f">= {args.recall_floor}")
    if args.baseline is not None:
        print(f"\ncomparing against baseline {args.baseline}")
        status = compare_baseline(results, args.baseline, args.tolerance)
    if args.profile:
        report = format_profile()
        if report:
            print("\n--- span profile ---")
            print(report)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
