"""Design-decision ablations (DESIGN.md §5).

Beyond the paper's own Table IV, these benches probe the design choices
the reproduction calls out as load-bearing, on the CUB-mini benchmark:

* **A1 — prompt form**: baseline vs hard vs soft zero-shot quality
  (Challenge 2: how much structure reaches the text tower).
* **A2 — Eq. 6 aggregation weight alpha**: extreme alphas (no structure
  vs no label identity) versus the balanced default.
* **A3 — Eq. 10 loss weight beta**: pure contrastive (beta=1) vs
  heavily orthogonal (beta=0.2) vs the default.
* **A4 — matching temperature tau (Eq. 4)**: sharp vs smooth softmax.

Each sweep asserts the sanity property that motivated the default.
"""

import pytest

from bench_common import TUNE_EPOCHS, TUNE_LR
from repro.core import CrossEM, CrossEMConfig, CrossEMPlus, CrossEMPlusConfig
from repro.datasets import cub_bundle, load_cub, train_test_split


@pytest.fixture(scope="module")
def setting():
    bundle = cub_bundle()
    dataset = load_cub()
    split = train_test_split(dataset, 0.5, seed=0)
    return bundle, dataset, split


def _fit_crossem(bundle, dataset, **kwargs):
    config = CrossEMConfig(epochs=kwargs.pop("epochs", TUNE_EPOCHS),
                           lr=TUNE_LR, seed=0, **kwargs)
    matcher = CrossEM(bundle, config)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    return matcher


def _fit_plus(bundle, dataset, **kwargs):
    config = CrossEMPlusConfig(epochs=TUNE_EPOCHS, lr=TUNE_LR, seed=0,
                               **kwargs)
    matcher = CrossEMPlus(bundle, config)
    matcher.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    return matcher


def test_a1_prompt_form(setting, benchmark):
    bundle, dataset, split = setting
    rows = {}
    for prompt in ("baseline", "hard", "soft"):
        matcher = _fit_crossem(bundle, dataset, prompt=prompt, epochs=0)
        rows[prompt] = matcher.evaluate(dataset, split.test)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n=== A1 prompt form (zero-shot) ===")
    for prompt, result in rows.items():
        print(f"  {prompt:10s} {result}")
    # structured prompts must stay competitive with the naive template
    assert rows["hard"].mrr > rows["baseline"].mrr * 0.8
    assert rows["soft"].mrr > rows["baseline"].mrr * 0.8


def test_a2_alpha_sweep(setting, benchmark):
    bundle, dataset, split = setting
    rows = {}
    for alpha in (0.0, 0.5, 1.0):
        matcher = _fit_crossem(bundle, dataset, prompt="soft", alpha=alpha)
        rows[alpha] = matcher.evaluate(dataset, split.test)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n=== A2 Eq.6 alpha sweep (soft prompt) ===")
    for alpha, result in rows.items():
        print(f"  alpha={alpha:<4} {result}")
    best = max(result.mrr for result in rows.values())
    # the balanced blend should not be dominated by either extreme
    assert rows[0.5].mrr >= best - 0.10


def test_a3_beta_sweep(setting, benchmark):
    bundle, dataset, split = setting
    rows = {}
    for beta in (0.2, 0.8, 1.0):
        matcher = _fit_plus(bundle, dataset, beta=beta)
        rows[beta] = matcher.evaluate(dataset, split.test)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n=== A3 Eq.10 beta sweep (CrossEM+) ===")
    for beta, result in rows.items():
        print(f"  beta={beta:<4} {result}")
    # drowning the contrastive signal in the constraint must not win
    assert rows[0.8].mrr >= rows[0.2].mrr - 0.02


def test_a4_temperature_sweep(setting, benchmark):
    bundle, dataset, split = setting
    rows = {}
    for tau in (0.03, 0.07, 0.5):
        matcher = _fit_crossem(bundle, dataset, prompt="soft",
                               temperature=tau)
        rows[tau] = matcher.evaluate(dataset, split.test)
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print("\n=== A4 temperature sweep (Eq. 4 tau) ===")
    for tau, result in rows.items():
        print(f"  tau={tau:<5} {result}")
    assert all(0.0 < result.mrr <= 1.0 for result in rows.values())
