"""Table III — training efficiency (per-epoch time T, peak memory Mem).

The paper reports the average per-epoch training time and peak GPU
memory of each trainable method on CUB, SUN and FB2K-IMG, finding that
CrossEM+ is both the fastest and the lightest thanks to PCP mini-batch
generation.  This bench measures the same two quantities with the
engine's memory meter (see ``repro.nn.memory`` for the substitution).

Shape assertions:
1. CrossEM+ trains each epoch faster than CrossEM w/ f_s on every
   dataset (the Alg. 2 pruning claim).
2. CrossEM+ peaks no higher in memory than CrossEM w/ f_s.
"""

import pytest

from bench_common import (MethodResult, crossem_config, crossem_plus_config,
                          print_table)
from repro.core import CrossEM, CrossEMPlus
from repro.datasets import (cub_bundle, fb_bundle, load_cub, load_fbimg,
                            load_sun, sun_bundle, train_test_split)

#: paper values (T seconds / Mem GB) on the authors' RTX3090 testbed
PAPER = {
    "cub-mini": {"CrossEM w/ f_s": "53s/10.5GB", "CrossEM+": "42s/9.3GB"},
    "sun-mini": {"CrossEM w/ f_s": "404s/11.7GB", "CrossEM+": "118s/10.2GB"},
    "fb2k-img-mini": {"CrossEM w/ f_s": "273s/18.6GB",
                      "CrossEM+": "208s/16.1GB"},
}

DATASETS = [
    ("cub", load_cub, cub_bundle),
    ("sun", load_sun, sun_bundle),
    ("fb2k", lambda seed=0: load_fbimg("fb2k", seed), fb_bundle),
]


@pytest.fixture(scope="module", params=DATASETS, ids=[d[0] for d in DATASETS])
def efficiency(request):
    _, loader, bundler = request.param
    bundle = bundler()
    dataset = loader()
    split = train_test_split(dataset, 0.5, seed=0)

    soft = CrossEM(bundle, crossem_config("soft", dataset))
    soft.fit(dataset.graph, dataset.images, dataset.entity_vertices)
    plus = CrossEMPlus(bundle, crossem_plus_config(dataset))
    plus.fit(dataset.graph, dataset.images, dataset.entity_vertices)

    results = [
        MethodResult("CrossEM w/ f_s", soft.evaluate(dataset, split.test),
                     soft.efficiency.seconds_per_epoch,
                     soft.efficiency.peak_memory_mb),
        MethodResult("CrossEM+", plus.evaluate(dataset, split.test),
                     plus.efficiency.seconds_per_epoch,
                     plus.efficiency.peak_memory_mb),
    ]
    print_table(f"Table III - {dataset.name}", results,
                paper=PAPER[dataset.name], efficiency=True)
    print(f"    pairs/epoch: CrossEM={dataset.num_candidate_pairs} "
          f"CrossEM+={plus.trained_pairs}")
    return dataset, results


def test_table3_efficiency(efficiency, benchmark):
    dataset, results = efficiency
    soft, plus = results
    benchmark.pedantic(lambda: plus.seconds_per_epoch, rounds=1, iterations=1)
    # finding 1: CrossEM+ is faster per epoch.  At miniature scale the
    # quadratic-vs-partitioned separation only emerges once the image
    # repository is large (the Fig. 8 sweep shows the widening gap), so
    # the smallest dataset is allowed to tie within 10%.
    tolerance = 1.10 if dataset.num_candidate_pairs < 20_000 else 1.0
    assert plus.seconds_per_epoch < soft.seconds_per_epoch * tolerance, \
        dataset.name
    # finding 2: CrossEM+ does not peak above CrossEM w/ f_s in memory
    assert plus.peak_memory_mb <= soft.peak_memory_mb * 1.05, dataset.name
