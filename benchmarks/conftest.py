"""Make the benchmark helpers importable and pre-warm model bundles."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
